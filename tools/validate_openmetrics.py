#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition written by obs::render_openmetrics.

Checks the subset of the OpenMetrics text format a Prometheus scrape relies
on, so CI catches exposition regressions without running a scraper:

  * the exposition ends with exactly one terminal "# EOF" line,
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*,
  * every sample belongs to a family declared by a prior "# TYPE" line, and
    families are declared at most once,
  * counter samples use the "_total" suffix,
  * histogram families expose "_bucket" samples with le labels, cumulative
    non-decreasing counts closed by an le="+Inf" bucket, plus "_sum" and
    "_count" where _count equals the +Inf bucket,
  * labels are well-formed name="value" pairs (escaped \\, \" and \\n),
  * sample values parse as floats; non-finite values must use the exact
    OpenMetrics spellings "NaN"/"+Inf"/"-Inf" (lowercase "nan"/"inf" and
    printf-style variants are rejected), are allowed on gauges and histogram
    _sum, and are rejected on counters and histogram bucket/count samples.

Exit code 0 on success; 1 with a diagnostic on the first violation.

Usage: validate_openmetrics.py metrics.txt [metrics2.txt ...]
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABELS_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"$')
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)(?:\s+\S+)?$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "unknown", "info", "stateset"}


def fail(path, lineno, msg):
    print(f"{path}:{lineno}: FAIL: {msg}", file=sys.stderr)
    return 1


def parse_value(text):
    """Parses an OpenMetrics value. Non-finite values are legal only in the
    ABNF's exact spellings; anything else float() would accept ("nan", "inf",
    "INFINITY", "NAN", ...) is a renderer bug and parses as None."""
    if text == "NaN":
        return math.nan
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        value = float(text)
    except ValueError:
        return None
    # A float() success on a non-finite means a lowercase/alternate spelling.
    if not math.isfinite(value):
        return None
    return value


def base_family(name, families):
    """Maps a sample name to its declared family (histogram suffixes fold)."""
    if name in families:
        return name
    for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def validate(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    if not text:
        return fail(path, 0, "empty exposition")
    if not text.endswith("# EOF\n"):
        return fail(path, 0, "exposition does not end with '# EOF'")

    families = {}  # name -> type
    buckets = {}  # histogram name -> list of (le, value) in order
    hist_scalars = {}  # histogram name -> {"_sum": v, "_count": v}
    samples = 0
    lines = text.splitlines()
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                return fail(path, lineno, "'# EOF' before end of exposition")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                return fail(path, lineno, f"malformed TYPE line: {line!r}")
            _, _, name, kind = parts
            if not NAME_RE.match(name):
                return fail(path, lineno, f"bad metric name {name!r}")
            if kind not in KNOWN_TYPES:
                return fail(path, lineno, f"unknown metric type {kind!r}")
            if name in families:
                return fail(path, lineno, f"family {name!r} declared twice")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP / UNIT / comments

        m = SAMPLE_RE.match(line)
        if not m:
            return fail(path, lineno, f"malformed sample line: {line!r}")
        name, labels_text, value_text = m.group(1), m.group(2), m.group(3)
        family = base_family(name, families)
        if family is None:
            return fail(path, lineno, f"sample {name!r} has no prior TYPE declaration")
        kind = families[family]

        labels = {}
        if labels_text:
            for pair in labels_text.split(","):
                lm = LABELS_RE.match(pair)
                if not lm:
                    return fail(path, lineno, f"malformed label pair {pair!r}")
                labels[lm.group(1)] = lm.group(2)

        value = parse_value(value_text)
        if value is None:
            return fail(
                path,
                lineno,
                f"bad sample value {value_text!r} (non-finite values must be "
                f'spelled "NaN"/"+Inf"/"-Inf" exactly)',
            )
        samples += 1

        if kind == "counter":
            if not (name.endswith("_total") or name.endswith("_created")):
                return fail(path, lineno, f"counter sample {name!r} lacks '_total' suffix")
            # Checked explicitly: NaN slips past a bare `value < 0`.
            if not math.isfinite(value):
                return fail(path, lineno, f"counter {name!r} is non-finite: {value_text}")
            if value < 0:
                return fail(path, lineno, f"counter {name!r} is negative: {value}")
        elif kind == "histogram":
            if name.endswith("_bucket") or name.endswith("_count"):
                if not math.isfinite(value):
                    return fail(
                        path, lineno, f"histogram count {name!r} is non-finite: {value_text}"
                    )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    return fail(path, lineno, f"bucket sample {name!r} has no 'le' label")
                le = parse_value(labels["le"])
                if le is None or math.isnan(le):
                    return fail(path, lineno, f"bad le bound {labels['le']!r}")
                buckets.setdefault(family, []).append((lineno, le, value))
            elif name.endswith("_sum") or name.endswith("_count"):
                hist_scalars.setdefault(family, {})[name[len(family):]] = value

    for family, series in buckets.items():
        last_le = -math.inf
        last_v = -1.0
        for lineno, le, value in series:
            if le <= last_le:
                return fail(path, lineno, f"{family} bucket bounds not increasing at le={le}")
            if value < last_v:
                return fail(
                    path, lineno, f"{family} cumulative bucket count decreases at le={le}"
                )
            last_le, last_v = le, value
        if last_le != math.inf:
            return fail(path, series[-1][0], f"{family} buckets not closed by le=\"+Inf\"")
        scalars = hist_scalars.get(family, {})
        if "_count" not in scalars or "_sum" not in scalars:
            return fail(path, series[-1][0], f"{family} missing _sum/_count")
        if scalars["_count"] != series[-1][2]:
            return fail(
                path,
                series[-1][0],
                f"{family} _count {scalars['_count']} != +Inf bucket {series[-1][2]}",
            )

    if samples == 0:
        return fail(path, 0, "no samples in exposition")
    print(
        f"{path}: OK ({len(families)} families, {samples} samples, "
        f"{len(buckets)} histograms)"
    )
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= validate(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
