#!/usr/bin/env python3
"""Minimal thermctld socket client for CI and operator one-liners.

Speaks the daemon's line-oriented protocol over its UNIX-domain stream
socket: sends one request line, prints the response to stdout, and exits
non-zero on connect failure, a dropped reply, or an ERR response. The
`metrics` / `GET /metrics` request reads a full OpenMetrics body (framed
by its terminating "# EOF" line); every other request reads one line.

Usage:
  thermctld_client.py SOCKET_PATH REQUEST [ARG...]

Examples:
  thermctld_client.py /run/thermctld.sock status
  thermctld_client.py /run/thermctld.sock metrics > metrics.txt
  thermctld_client.py /run/thermctld.sock set-policy 25
  thermctld_client.py /run/thermctld.sock shutdown
"""

from __future__ import annotations

import socket
import sys
import time


def recv_until(sock: socket.socket, terminator: bytes) -> bytes:
    """Reads until `terminator` ends the buffer; b"" on a dropped reply."""
    buf = b""
    while not buf.endswith(terminator):
        chunk = sock.recv(65536)
        if not chunk:
            return b""
        buf += chunk
    return buf


def request(path: str, line: str, connect_timeout_s: float = 10.0) -> str:
    """One request -> full response text. Raises on connect/drop failures."""
    deadline = time.monotonic() + connect_timeout_s
    while True:
        # A fresh socket per attempt: a failed connect() leaves the fd
        # unusable (EINVAL on retry).
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30.0)
        try:
            sock.connect(path)
            break
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
    try:
        sock.sendall(line.encode() + b"\n")
        is_metrics = line in ("metrics", "GET /metrics")
        terminator = b"# EOF\n" if is_metrics else b"\n"
        response = recv_until(sock, terminator)
        if not response:
            raise ConnectionError(f"connection dropped mid-response to: {line}")
        return response.decode()
    finally:
        sock.close()


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    line = " ".join(argv[2:])
    try:
        response = request(path, line)
    except OSError as err:
        print(f"thermctld_client: {err}", file=sys.stderr)
        return 1
    sys.stdout.write(response)
    return 1 if response.startswith("ERR") else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
