#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file exported by obs::write_chrome_trace.

Checks the structural contract Perfetto / chrome://tracing relies on, so CI
catches exporter regressions without a browser:

  * top level is an object with a "traceEvents" array,
  * every event has name/ph/pid/tid, a finite numeric "ts" (except "M"
    metadata records, which carry no timestamp),
  * phases are limited to the ones the exporter emits (i, C, X, M),
  * complete events ("X") carry a non-negative "dur",
  * counter events ("C") carry a numeric args payload,
  * instants ("i") carry a scope "s",
  * timestamps are non-decreasing per (pid, tid) lane for non-"X" events
    (the exporter writes the merged time-ordered stream; spans are stamped
    at their start edge so they may jump backwards),
  * control-plane and watchdog events carry their full structured payload
    (plane_budget: budget_w/wall_w/cap_khz/changed, plane_policy_update: pp,
    alert_fire/alert_clear: rule/rack/value/threshold) and plane_autonomous
    spans carry their start edge.

Exit code 0 on success; 1 with a diagnostic on the first violation.

Usage: validate_chrome_trace.py trace.json [trace2.json ...]
"""

import json
import math
import sys

ALLOWED_PHASES = {"i", "C", "X", "M"}

# Structured payloads the analyzer tooling depends on: these instants must
# carry every listed arg (numeric payloads are checked like counter args).
REQUIRED_ARGS = {
    "plane_budget": {"budget_w", "wall_w", "cap_khz", "changed"},
    "plane_policy_update": {"pp"},
    "alert_fire": {"rule", "rack", "value", "threshold"},
    "alert_clear": {"rule", "rack", "value", "threshold"},
}


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return fail(path, f"not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(path, "top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(path, "traceEvents is not an array")
    if not events:
        return fail(path, "traceEvents is empty")

    last_ts = {}  # (pid, tid) -> ts
    counts = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(path, f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                return fail(path, f"{where} missing '{key}'")
        ph = ev["ph"]
        if ph not in ALLOWED_PHASES:
            return fail(path, f"{where} has unexpected phase {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts):
            return fail(path, f"{where} has non-finite ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                return fail(path, f"{where} ('X') has bad dur {dur!r}")
        else:
            lane = (ev["pid"], ev["tid"])
            if ts < last_ts.get(lane, -math.inf):
                return fail(
                    path,
                    f"{where} ts {ts} goes backwards on lane pid={lane[0]} tid={lane[1]}",
                )
            last_ts[lane] = ts
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                return fail(path, f"{where} ('C') has no args payload")
            for k, v in args.items():
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    return fail(path, f"{where} ('C') arg {k!r} is non-numeric: {v!r}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            return fail(path, f"{where} ('i') has bad scope {ev.get('s')!r}")

        name = ev["name"]
        if ph == "i" and name in REQUIRED_ARGS:
            args = ev.get("args")
            if not isinstance(args, dict):
                return fail(path, f"{where} ({name!r}) has no args payload")
            missing = REQUIRED_ARGS[name] - set(args)
            if missing:
                return fail(path, f"{where} ({name!r}) missing args {sorted(missing)}")
            for k in REQUIRED_ARGS[name]:
                v = args[k]
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    return fail(path, f"{where} ({name!r}) arg {k!r} is non-numeric: {v!r}")
        if ph == "X" and name == "plane_autonomous":
            args = ev.get("args")
            if not isinstance(args, dict) or "start_s" not in args:
                return fail(path, f"{where} (plane_autonomous span) missing start_s")

    summary = ", ".join(f"{counts.get(p, 0)} {p}" for p in sorted(ALLOWED_PHASES))
    print(f"{path}: OK ({len(events)} events: {summary})")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= validate(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
