// thermctld — a config-driven thermal-control "daemon" run against the
// simulated cluster. The shape a production deployment of the paper's
// framework would take: an operator writes a small config naming the
// techniques, thresholds and the policy parameter; the daemon wires per-node
// controllers and reports what happened.
//
// Usage:
//   thermctld [config-file]
//
// Config format (key = value, '#' comments; all keys optional):
//   nodes = 4
//   workload = bt | lu | burn | idle
//   pp = 50                      # policy parameter, 1..100
//   fan = dynamic | static | constant | none
//   max_duty = 100               # fan ceiling, percent
//   dvfs = tdvfs | cpuspeed | none
//   threshold = 51               # tDVFS trigger, degC
//   idle_injection = on | off    # sleep-state backstop
//   duration = 300               # horizon / cpu-burn seconds
//   seed = 20260708
//   csv = out_prefix             # write temp/duty/freq series CSVs
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

std::map<std::string, std::string> parse_config(const std::string& path) {
  std::map<std::string, std::string> kv;
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "thermctld: cannot open %s, using defaults\n", path.c_str());
    return kv;
  }
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    auto trim = [](std::string s) {
      const auto begin = s.find_first_not_of(" \t");
      const auto end = s.find_last_not_of(" \t");
      return begin == std::string::npos ? std::string{} : s.substr(begin, end - begin + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (!key.empty() && !value.empty()) {
      kv[key] = value;
    }
  }
  return kv;
}

std::string get(const std::map<std::string, std::string>& kv, const std::string& key,
                const std::string& fallback) {
  auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string config_path = argc > 1 ? argv[1] : "thermctld.conf";
  const auto kv = parse_config(config_path);

  ExperimentConfig cfg = paper_platform();
  cfg.name = "thermctld";
  cfg.nodes = static_cast<std::size_t>(std::stoul(get(kv, "nodes", "4")));
  cfg.seed = std::stoull(get(kv, "seed", "20260708"));
  cfg.pp = PolicyParam{std::stoi(get(kv, "pp", "50"))};
  cfg.max_duty = DutyCycle{std::stod(get(kv, "max_duty", "100"))};
  cfg.tdvfs.threshold = Celsius{std::stod(get(kv, "threshold", "51"))};
  cfg.cpu_burn_duration = Seconds{std::stod(get(kv, "duration", "300"))};
  cfg.engine.horizon = Seconds{std::stod(get(kv, "duration", "300")) * 2.0};

  const std::string workload = get(kv, "workload", "bt");
  if (workload == "bt") {
    cfg.workload = WorkloadKind::kNpbBt;
  } else if (workload == "lu") {
    cfg.workload = WorkloadKind::kNpbLu;
  } else if (workload == "burn") {
    cfg.workload = WorkloadKind::kCpuBurnCycles;
  } else if (workload == "idle") {
    cfg.workload = WorkloadKind::kIdle;
  } else {
    std::fprintf(stderr, "thermctld: unknown workload '%s'\n", workload.c_str());
    return 1;
  }

  const std::string fan = get(kv, "fan", "dynamic");
  if (fan == "dynamic") {
    cfg.fan = FanPolicyKind::kDynamic;
  } else if (fan == "static") {
    cfg.fan = FanPolicyKind::kStaticCurve;
  } else if (fan == "constant") {
    cfg.fan = FanPolicyKind::kConstantDuty;
  } else if (fan == "none") {
    cfg.fan = FanPolicyKind::kChipDefault;
  } else {
    std::fprintf(stderr, "thermctld: unknown fan policy '%s'\n", fan.c_str());
    return 1;
  }

  const std::string dvfs = get(kv, "dvfs", "tdvfs");
  if (dvfs == "tdvfs") {
    cfg.dvfs = DvfsPolicyKind::kTdvfs;
  } else if (dvfs == "cpuspeed") {
    cfg.dvfs = DvfsPolicyKind::kCpuspeed;
  } else if (dvfs == "none") {
    cfg.dvfs = DvfsPolicyKind::kNone;
  } else {
    std::fprintf(stderr, "thermctld: unknown dvfs policy '%s'\n", dvfs.c_str());
    return 1;
  }

  std::printf("thermctld: %zu nodes, workload=%s, fan=%s (cap %.0f%%), dvfs=%s, Pp=%d, "
              "threshold=%.0f degC\n",
              cfg.nodes, workload.c_str(), fan.c_str(), cfg.max_duty.percent(), dvfs.c_str(),
              cfg.pp.value, cfg.tdvfs.threshold.value());

  const ExperimentResult r = run_experiment(cfg);

  std::printf("\n%s", render_report(r).c_str());
  if (r.first_dvfs_trigger_s >= 0.0) {
    std::printf("first DVFS intervention at t=%.1f s\n", r.first_dvfs_trigger_s);
  }

  const std::string csv = get(kv, "csv", "");
  if (!csv.empty()) {
    r.run.write_csv(csv + "_temp.csv", "sensor_temp");
    r.run.write_csv(csv + "_duty.csv", "duty");
    r.run.write_csv(csv + "_freq.csv", "freq_ghz");
    std::printf("series written: %s_{temp,duty,freq}.csv\n", csv.c_str());
  }
  return 0;
}
