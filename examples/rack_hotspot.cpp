// Rack hot spot: per-node unified control in an 8-node rack with uneven
// inlet temperatures — the data-center phenomenon motivating the paper's
// introduction ("hot spots or pockets of elevated temperatures ... can be
// easily formed when room air circulation is not effective").
//
// Nodes 5-6 sit in a recirculation pocket (inlet +9 degC). The example runs
// the same parallel job twice — uncontrolled (static fan curves) and with
// per-node unified controllers — and compares the hot-spot nodes' fate. It
// also demonstrates the out-of-band plane: an operator script watches every
// node over IPMI while the job runs.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/fan_policy.hpp"
#include "core/unified_controller.hpp"
#include "workload/app.hpp"
#include "workload/npb.hpp"

namespace {

using namespace thermctl;

constexpr std::size_t kNodes = 8;
constexpr std::size_t kHot1 = 5;
constexpr std::size_t kHot2 = 6;

struct RackRun {
  cluster::RunResult result;
  int prochot_events = 0;
  double hot_node_max = 0.0;
  double cool_node_max = 0.0;
};

RackRun run_rack(bool unified) {
  cluster::NodeParams params;
  cluster::Cluster rack{kNodes, params};
  for (std::size_t i = 0; i < kNodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.set_inlet_temperature(kHot1, Celsius{37.0});
  rack.set_inlet_temperature(kHot2, Celsius{37.0});
  rack.settle_all();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{400.0};
  cluster::Engine engine{rack, engine_cfg};

  Rng rng{404};
  workload::NpbParams npb = workload::bt_class_b();
  npb.iterations = 120;
  workload::ParallelApp app{"BT.B.8", workload::make_npb_programs(npb, kNodes, rng)};
  std::vector<std::size_t> mapping(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    mapping[i] = i;
  }
  engine.attach_app(app, mapping);

  std::vector<std::unique_ptr<core::UnifiedController>> controllers;
  if (unified) {
    for (std::size_t i = 0; i < kNodes; ++i) {
      core::UnifiedConfig cfg;
      cfg.pp = core::PolicyParam{40};  // slightly temperature-oriented
      // Threshold sized to the pocket: +9 degC inlet shifts the whole
      // envelope, and a 51 degC trigger would pin the hot nodes at the
      // bottom of the ladder (and barrier-stall the rest of the job).
      cfg.tdvfs.threshold = Celsius{56.0};
      controllers.push_back(std::make_unique<core::UnifiedController>(
          rack.node(i).hwmon(), rack.node(i).cpufreq(), cfg));
      core::UnifiedController* raw = controllers.back().get();
      engine.add_periodic(params.sample_period, [raw](SimTime now) { raw->on_sample(now); });
    }
  } else {
    for (std::size_t i = 0; i < kNodes; ++i) {
      core::StaticFanPolicy policy{rack.node(i).fan_driver(), core::StaticFanPolicy::Curve{},
                                   DutyCycle{100.0}};
      policy.apply();
    }
  }

  // Operator-side out-of-band monitoring: poll every BMC once per 10 s.
  engine.add_periodic(Seconds{10.0}, [&rack](SimTime now) {
    double hottest = 0.0;
    int hottest_node = -1;
    for (int n : rack.ipmi().nodes()) {
      sysfs::SensorReading reading;
      if (rack.ipmi().get_sensor_reading(n, 1, reading) == sysfs::IpmiCompletion::kOk &&
          reading.value > hottest) {
        hottest = reading.value;
        hottest_node = n;
      }
    }
    if (hottest > 56.0) {
      std::printf("  [ipmi t=%5.0fs] hottest node %d at %.0f degC\n", now.seconds(),
                  hottest_node, hottest);
    }
  });

  RackRun out;
  out.result = engine.run();
  for (std::size_t i = 0; i < kNodes; ++i) {
    out.prochot_events += out.result.summaries[i].prochot_events;
  }
  out.hot_node_max =
      std::max(out.result.summaries[kHot1].max_die_temp, out.result.summaries[kHot2].max_die_temp);
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i != kHot1 && i != kHot2) {
      out.cool_node_max = std::max(out.cool_node_max, out.result.summaries[i].max_die_temp);
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("8-node rack, BT across all nodes, nodes %zu-%zu in a +9 degC hot pocket\n\n",
              kHot1, kHot2);

  std::printf("--- baseline: per-node traditional static fan curves ---\n");
  const RackRun baseline = run_rack(/*unified=*/false);
  std::printf("--- unified: per-node dynamic fan + tDVFS (Pp=40) ---\n");
  const RackRun unified = run_rack(/*unified=*/true);

  std::printf("\n%-34s %14s %14s\n", "", "static", "unified");
  std::printf("%-34s %11.1f s %11.1f s\n", "job execution time",
              baseline.result.exec_time_s, unified.result.exec_time_s);
  std::printf("%-34s %10.1f C %10.1f C\n", "hot-pocket nodes, max die",
              baseline.hot_node_max, unified.hot_node_max);
  std::printf("%-34s %10.1f C %10.1f C\n", "rest of rack, max die", baseline.cool_node_max,
              unified.cool_node_max);
  std::printf("%-34s %13d %13d\n", "PROCHOT events (rack total)", baseline.prochot_events,
              unified.prochot_events);
  std::printf("%-34s %11.1f W %11.1f W\n", "avg per-node wall power",
              baseline.result.avg_power_w(), unified.result.avg_power_w());

  const double slowdown = (unified.result.exec_time_s - baseline.result.exec_time_s) /
                          baseline.result.exec_time_s * 100.0;
  std::printf("\nunified control cooled the hot pocket by %.1f degC for %.1f%% job slowdown\n",
              baseline.hot_node_max - unified.hot_node_max, slowdown);
  return 0;
}
