// Trace replay: run the unified controller against a recorded utilization
// trace (monitoring export) instead of a synthetic workload, then analyze
// the resulting thermal behaviour with the §3.1 segmentation tool.
//
// Usage:
//   trace_replay [utilization.csv]
//
// The CSV holds `time_s,utilization` rows. Without an argument the example
// writes and replays a demonstration trace (a web-serving diurnal pattern
// compressed to five minutes: quiet -> ramp -> bursty peak -> decay).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/trace_analysis.hpp"
#include "core/unified_controller.hpp"
#include "workload/trace_load.hpp"

namespace {

using namespace thermctl;

std::string write_demo_trace() {
  // Keep generated artifacts with the other run outputs (bench_out/ is
  // gitignored) instead of littering the working directory.
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const std::string path = "bench_out/trace_replay_demo.csv";
  std::ofstream out{path};
  out << "time_s,utilization\n";
  // Quiet baseline.
  for (int t = 0; t < 60; t += 5) {
    out << t << "," << 0.08 + 0.02 * ((t / 5) % 2) << "\n";
  }
  // Morning ramp.
  for (int t = 60; t < 120; t += 5) {
    out << t << "," << 0.1 + 0.8 * (t - 60) / 60.0 << "\n";
  }
  // Bursty peak hour.
  for (int t = 120; t < 240; t += 5) {
    out << t << "," << (((t / 5) % 3 == 0) ? 0.55 : 0.95) << "\n";
  }
  // Decay.
  for (int t = 240; t <= 300; t += 5) {
    out << t << "," << 0.9 - 0.8 * (t - 240) / 60.0 << "\n";
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : write_demo_trace();
  std::printf("replaying %s\n", path.c_str());

  workload::TraceLoadOptions opts;
  opts.interpolate = true;
  const workload::TraceLoad trace = workload::TraceLoad::from_csv(path, opts);
  std::printf("trace: %zu samples over %.0f s\n", trace.sample_count(),
              trace.duration().value());

  cluster::NodeParams params;
  cluster::Cluster rack{1, params};
  rack.node(0).set_utilization(trace.at(SimTime{}));
  rack.node(0).settle();

  core::UnifiedConfig control;
  control.pp = core::PolicyParam::moderate();
  core::UnifiedController controller{rack.node(0).hwmon(), rack.node(0).cpufreq(), control};

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{trace.duration().value() + 30.0};
  cluster::Engine engine{rack, engine_cfg};
  engine.set_node_load(0, &trace);
  engine.add_periodic(params.sample_period,
                      [&controller](SimTime now) { controller.on_sample(now); });

  const cluster::RunResult result = engine.run();

  std::printf("\nthermal outcome: avg %.1f degC, max %.1f degC, avg duty %.1f%%, "
              "%llu freq changes\n",
              result.avg_die_temp(), result.max_die_temp(), result.avg_duty(),
              static_cast<unsigned long long>(result.summaries[0].freq_transitions));

  core::TraceAnalysisConfig analysis_cfg;
  analysis_cfg.min_segment_samples = 40;  // coarse view: merge blips < 10 s
  const auto analysis =
      core::analyze_trace(result.nodes[0].sensor_temp, 0.25, analysis_cfg);
  std::printf("\nbehaviour segmentation of the replayed run:\n%s",
              core::render_analysis(analysis).c_str());
  std::printf("\nreading: 'gradual' share is where proactive fan control earns its\n"
              "keep; heavy 'jitter' share means the two-level window's averaging is\n"
              "doing real filtering work on this trace.\n");
  return 0;
}
