// Quickstart: unified thermal control of a single node, end to end.
//
// Builds one simulated server node, attaches the unified controller (dynamic
// fan + tDVFS sharing one policy parameter), runs a bursty workload against
// it, and prints what happened. This is the smallest complete use of the
// public API:
//
//   1. cluster::Cluster / cluster::Node  — the machine (devices + sysfs)
//   2. workload::SegmentLoad             — something to generate heat
//   3. core::UnifiedController           — the paper's contribution
//   4. cluster::Engine                   — ties it together in time
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/unified_controller.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace thermctl;

  // 1. One node with the paper-platform defaults (Athlon64-class CPU with
  //    5 P-states, 4300 RPM PWM fan behind an ADT7467, 4 Hz thermal sensor).
  cluster::NodeParams node_params;
  cluster::Cluster cluster{1, node_params};
  cluster::Node& node = cluster.node(0);
  node.set_utilization(Utilization{0.02});
  node.settle();  // machine idles before the job arrives
  std::printf("idle: die %.1f degC, fan %.0f%% duty, %ld kHz\n",
              node.die_temperature().value(), node.fan().duty().percent(),
              node.cpufreq().cur_khz());

  // 2. A workload: 2 minutes of full load with a bursty tail.
  std::vector<workload::LoadSegment> segments;
  segments.push_back({Seconds{20.0}, 0.05, 0.05, 0.0, Seconds{0.0}, 0.01});
  segments.push_back({Seconds{120.0}, 1.0, 1.0, 0.0, Seconds{0.0}, 0.02});
  segments.push_back({Seconds{60.0}, 0.5, 0.5, 0.35, Seconds{3.0}, 0.05});
  const workload::SegmentLoad load{std::move(segments), /*noise_seed=*/7};

  // 3. The unified controller: one Pp steering both the out-of-band (fan)
  //    and in-band (DVFS) techniques; DVFS only triggers above 51 degC.
  core::UnifiedConfig control;
  control.pp = core::PolicyParam::moderate();  // Pp = 50
  control.tdvfs.threshold = Celsius{51.0};
  control.fan.max_duty = DutyCycle{80.0};
  core::UnifiedController controller{node.hwmon(), node.cpufreq(), control};

  // 4. The engine: 50 ms physics, 4 Hz sensor sampling and controller ticks.
  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{210.0};
  cluster::Engine engine{cluster, engine_cfg};
  engine.set_node_load(0, &load);
  engine.add_periodic(node_params.sample_period,
                      [&controller](SimTime now) { controller.on_sample(now); });

  const cluster::RunResult result = engine.run();

  std::printf("\nrun summary (%zu samples over %.0f s):\n", result.times.size(),
              result.times.back());
  std::printf("  die temperature: avg %.1f degC, max %.1f degC\n", result.avg_die_temp(),
              result.max_die_temp());
  std::printf("  fan duty:        avg %.1f%%\n", result.avg_duty());
  std::printf("  wall power:      avg %.1f W (%.1f kJ total)\n",
              result.summaries[0].avg_power_w, result.summaries[0].energy_j / 1000.0);
  std::printf("  freq changes:    %llu\n",
              static_cast<unsigned long long>(result.summaries[0].freq_transitions));
  std::printf("  fan retargets:   %llu\n",
              static_cast<unsigned long long>(controller.fan().retarget_count()));
  if (controller.first_dvfs_trigger_s() >= 0.0) {
    std::printf("  tDVFS first intervened at t=%.1f s\n", controller.first_dvfs_trigger_s());
  } else {
    std::printf("  tDVFS never needed to intervene (fan held the line)\n");
  }
  std::printf("  thermal emergencies (PROCHOT): %d\n", result.summaries[0].prochot_events);
  return 0;
}
