// Fan failure and in-band rescue: the thermal-emergency scenario from the
// paper's related work (Choi et al.'s ThermoStat "considered the use of DVFS
// in response to fan failure") made concrete on this stack.
//
// Timeline:
//   t = 0 s    node runs a sustained job under dynamic fan control
//   t = 60 s   the fan rotor seizes (injected fault)
//   ...        the unified controller's in-band half (tDVFS) takes over as
//              temperature crosses the threshold
//   t = 240 s  a technician replaces the fan (fault cleared); tDVFS restores
//              full frequency once the node is consistently cool
//
// Run twice — with and without the controller — to see the difference
// between a managed incident and a PROCHOT/THERMTRIP emergency.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/unified_controller.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace thermctl;

struct IncidentReport {
  double max_die = 0.0;
  int prochot_events = 0;
  double prochot_seconds = 0.0;
  bool halted = false;
  double final_freq = 0.0;
  std::vector<core::TdvfsEvent> dvfs_events;
};

IncidentReport run_incident(bool with_controller) {
  cluster::NodeParams params;
  cluster::Cluster cluster{1, params};
  cluster::Node& node = cluster.node(0);
  node.set_utilization(Utilization{0.02});
  node.settle();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{400.0};
  cluster::Engine engine{cluster, engine_cfg};
  const auto load = workload::gradual_profile(Seconds{400.0}, 0.95);
  engine.set_node_load(0, &load);

  std::unique_ptr<core::UnifiedController> controller;
  if (with_controller) {
    core::UnifiedConfig cfg;
    cfg.pp = core::PolicyParam{35};
    cfg.tdvfs.threshold = Celsius{54.0};
    controller = std::make_unique<core::UnifiedController>(node.hwmon(), node.cpufreq(), cfg);
    core::UnifiedController* raw = controller.get();
    engine.add_periodic(params.sample_period, [raw](SimTime now) { raw->on_sample(now); });
  }

  // Fault schedule: seize at 60 s, repair at 240 s.
  engine.add_periodic(Seconds{1.0}, [&node](SimTime now) {
    const double t = now.seconds();
    if (t >= 60.0 && t < 61.0 && !node.fan().faulted()) {
      node.fan().inject_stuck_fault();
      std::printf("  [t=%5.0fs] FAN ROTOR SEIZED\n", t);
    }
    if (t >= 240.0 && t < 241.0 && node.fan().faulted()) {
      node.fan().clear_fault();
      std::printf("  [t=%5.0fs] fan replaced\n", t);
    }
  });

  const cluster::RunResult result = engine.run();
  IncidentReport report;
  report.max_die = result.max_die_temp();
  report.prochot_events = result.summaries[0].prochot_events;
  report.prochot_seconds = result.summaries[0].prochot_seconds;
  report.halted = node.halted();
  report.final_freq = node.cpu().frequency().value();
  if (controller) {
    report.dvfs_events = controller->dvfs().events();
  }
  return report;
}

}  // namespace

int main() {
  std::printf("--- incident WITHOUT thermal management ---\n");
  const IncidentReport bare = run_incident(false);
  std::printf("--- incident WITH unified controller (Pp=35, threshold 54 degC) ---\n");
  const IncidentReport managed = run_incident(true);

  if (!managed.dvfs_events.empty()) {
    std::printf("\ncontroller's in-band response:\n");
    for (const auto& e : managed.dvfs_events) {
      std::printf("  t=%6.1fs  %.1f -> %.1f GHz\n", e.time_s, e.from_ghz, e.to_ghz);
    }
  }

  std::printf("\n%-32s %12s %12s\n", "", "unmanaged", "managed");
  std::printf("%-32s %9.1f C %9.1f C\n", "max die temperature", bare.max_die, managed.max_die);
  std::printf("%-32s %12d %12d\n", "PROCHOT events", bare.prochot_events,
              managed.prochot_events);
  std::printf("%-32s %10.1f s %10.1f s\n", "time clock-throttled", bare.prochot_seconds,
              managed.prochot_seconds);
  std::printf("%-32s %12s %12s\n", "THERMTRIP halt",
              bare.halted ? "YES" : "no", managed.halted ? "YES" : "no");
  std::printf("%-32s %8.1f GHz %8.1f GHz\n", "frequency at end of run", bare.final_freq,
              managed.final_freq);

  std::printf("\nunmanaged, the node rides PROCHOT (hardware clock-gating, invisible to\n"
              "the OS and brutal to performance); managed, tDVFS absorbs the incident\n"
              "with explicit, bounded P-state changes and restores speed after repair.\n");
  return 0;
}
