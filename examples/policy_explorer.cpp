// Policy explorer: sweep the policy parameter Pp and print the
// temperature / power / performance trade-off surface a user would tune
// from.
//
// §4's framing: "we do not mean to pick an optimal Pp for any case ...
// Rather, we mean to develop a tool which has an adjustable parameter Pp to
// enforce user control policies." This example IS that tool's tuning view:
// one row per Pp, all three costs side by side, under the hybrid
// (fan + tDVFS) controller on a BT-like job.
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;

  std::printf("Pp sweep under hybrid control (BT.B.4, fan cap 60%%, threshold 51 degC)\n");
  std::printf("smaller Pp = temperature-oriented, larger Pp = cost-oriented\n\n");

  TextTable table{{"Pp", "avg temp (degC)", "max temp", "avg duty (%)", "avg power (W)",
                   "exec time (s)", "PDP (kW*s)", "tDVFS trigger (s)"}};

  double best_pdp = 1e18;
  int best_pdp_pp = 0;
  for (int pp : {10, 25, 40, 50, 60, 75, 90}) {
    ExperimentConfig cfg = paper_platform();
    cfg.workload = WorkloadKind::kNpbBt;
    cfg.npb_iterations_override = 120;  // keep the sweep brisk
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.dvfs = DvfsPolicyKind::kTdvfs;
    cfg.pp = PolicyParam{pp};
    cfg.max_duty = DutyCycle{60.0};
    const ExperimentResult r = run_experiment(cfg);

    const double pdp = r.run.power_delay_product() / 1000.0;
    if (pdp < best_pdp) {
      best_pdp = pdp;
      best_pdp_pp = pp;
    }
    table.add_row("Pp=" + std::to_string(pp),
                  {r.run.avg_die_temp(), r.run.max_die_temp(), r.run.avg_duty(),
                   r.run.avg_power_w(), r.run.exec_time_s, pdp,
                   r.first_dvfs_trigger_s},
                  2);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(trigger = -1 means the fan alone kept the node under the tDVFS threshold)\n");
  std::printf("lowest power-delay product in this sweep: Pp=%d (%.2f kW*s)\n", best_pdp_pp,
              best_pdp);
  std::printf("\nreading the table: moving down (larger Pp) trades degrees for watts;\n"
              "the knee depends on the workload — which is exactly why Pp is exposed\n"
              "to the user rather than fixed by the framework.\n");
  return 0;
}
