#include "hw/cstates.hpp"

#include <gtest/gtest.h>

#include "hw/cpu_device.hpp"

namespace thermctl::hw {
namespace {

TEST(IdleInjector, InactiveByDefault) {
  IdleInjector inj;
  EXPECT_FALSE(inj.active());
  EXPECT_DOUBLE_EQ(inj.throughput_factor(), 1.0);
  EXPECT_DOUBLE_EQ(inj.dynamic_power_factor(), 1.0);
  EXPECT_DOUBLE_EQ(inj.leakage_power_factor(), 1.0);
}

TEST(IdleInjector, DefaultLadderOrderedShallowToDeep) {
  const auto states = default_cstates();
  ASSERT_EQ(states.size(), 3u);
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_LT(states[i].dynamic_retention, states[i - 1].dynamic_retention);
    EXPECT_LE(states[i].leakage_retention, states[i - 1].leakage_retention);
    EXPECT_GT(states[i].wakeup_latency.value(), states[i - 1].wakeup_latency.value());
  }
}

TEST(IdleInjector, ThroughputScalesWithFraction) {
  IdleInjector inj;
  inj.set_injection(0.30, 0);
  EXPECT_NEAR(inj.throughput_factor(), 0.70, 1e-3);
}

TEST(IdleInjector, DeepStateWakeLatencyCostsThroughput) {
  IdleInjector inj;
  inj.set_injection(0.30, 0);  // C1: 2 us wake
  const double shallow = inj.throughput_factor();
  inj.set_injection(0.30, 2);  // C2: 100 us wake
  EXPECT_LT(inj.throughput_factor(), shallow);
}

TEST(IdleInjector, DeeperStateSavesMorePower) {
  IdleInjector inj;
  inj.set_injection(0.40, 0);
  const double dyn_shallow = inj.dynamic_power_factor();
  const double leak_shallow = inj.leakage_power_factor();
  inj.set_injection(0.40, 2);
  EXPECT_LT(inj.dynamic_power_factor(), dyn_shallow);
  EXPECT_LT(inj.leakage_power_factor(), leak_shallow);
}

TEST(IdleInjector, FractionClampedToMax) {
  IdleInjector inj;
  inj.set_injection(0.9, 0);
  EXPECT_DOUBLE_EQ(inj.fraction(), 0.5);  // powerclamp-style 50% cap
}

TEST(IdleInjector, StopRestoresNominal) {
  IdleInjector inj;
  inj.set_injection(0.4, 1);
  inj.stop();
  EXPECT_FALSE(inj.active());
  EXPECT_DOUBLE_EQ(inj.throughput_factor(), 1.0);
}

TEST(IdleInjector, CpuPowerDropsUnderInjection) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  const double full = cpu.power().value();
  cpu.idle_injector().set_injection(0.5, 2);
  const double clamped = cpu.power().value();
  EXPECT_LT(clamped, full * 0.62);  // ~half the dynamic power gone
  EXPECT_GT(clamped, full * 0.35);  // leakage retention keeps it bounded
}

TEST(IdleInjector, CpuWorkCapacityDropsUnderInjection) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  cpu.idle_injector().set_injection(0.25, 0);
  EXPECT_NEAR(cpu.work_capacity(Seconds{1.0}), 2.4 * 0.75, 0.01);
  EXPECT_NEAR(cpu.delivered_frequency().value(), 2.4 * 0.75, 0.01);
}

TEST(IdleInjector, ComposesWithProchot) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  cpu.idle_injector().set_injection(0.5, 0);
  cpu.set_thermal_throttle(true);
  // Both mechanisms multiply: 1.0 GHz PROCHOT floor * 50% injection.
  EXPECT_NEAR(cpu.delivered_frequency().value(), 0.5, 0.01);
}

TEST(IdleInjectorDeath, RejectsBadState) {
  IdleInjector inj;
  EXPECT_DEATH(inj.set_injection(0.3, 9), "C-state");
}

TEST(IdleInjectorDeath, RejectsEmptyLadder) {
  IdleInjectorParams params;
  params.cstates.clear();
  EXPECT_DEATH(IdleInjector{params}, "C-state");
}

}  // namespace
}  // namespace thermctl::hw
