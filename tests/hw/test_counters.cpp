#include <gtest/gtest.h>

#include "hw/cpu_device.hpp"

namespace thermctl::hw {
namespace {

TEST(Counters, StartAtZero) {
  CpuDevice cpu;
  EXPECT_EQ(cpu.aperf(), 0u);
  EXPECT_EQ(cpu.mperf(), 0u);
  EXPECT_EQ(cpu.energy_uj(), 0u);
}

TEST(Counters, MperfTracksWallTimeAtMaxFrequency) {
  CpuDevice cpu;
  for (int i = 0; i < 20; ++i) {
    cpu.advance_counters(Seconds{0.05});
  }
  // 1 s at 2.4 GHz nominal = 2400 Mcycles.
  EXPECT_NEAR(static_cast<double>(cpu.mperf()), 2400.0, 1.0);
}

TEST(Counters, AperfTracksDeliveredWork) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{0.5});
  cpu.advance_counters(Seconds{1.0});
  // 1 s at 2.4 GHz * 50% utilization = 1200 Mcycles.
  EXPECT_NEAR(static_cast<double>(cpu.aperf()), 1200.0, 1.0);
}

TEST(Counters, AperfMperfRatioGivesDeliveredSpeed) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  cpu.set_pstate(2);  // 2.0 GHz
  cpu.advance_counters(Seconds{2.0});
  const double ratio =
      static_cast<double>(cpu.aperf()) / static_cast<double>(cpu.mperf());
  EXPECT_NEAR(ratio, 2.0 / 2.4, 0.01);
}

TEST(Counters, ThrottlingShowsInAperf) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  cpu.set_thermal_throttle(true);
  cpu.advance_counters(Seconds{1.0});
  EXPECT_NEAR(static_cast<double>(cpu.aperf()), 1000.0, 1.0);  // 1.0 GHz floor
}

TEST(Counters, EnergyIntegratesPower) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  const double p = cpu.power().value();
  cpu.advance_counters(Seconds{1.0});
  EXPECT_NEAR(static_cast<double>(cpu.energy_uj()) * 1e-6, p, 0.01);
}

TEST(Counters, SmallStepsAccumulateWithoutDrift) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  CpuDevice reference;
  reference.set_utilization(Utilization{1.0});
  for (int i = 0; i < 1000; ++i) {
    cpu.advance_counters(Seconds{0.001});  // 1 ms steps
  }
  reference.advance_counters(Seconds{1.0});  // one big step
  EXPECT_NEAR(static_cast<double>(cpu.energy_uj()),
              static_cast<double>(reference.energy_uj()), 10.0);
  EXPECT_NEAR(static_cast<double>(cpu.aperf()),
              static_cast<double>(reference.aperf()), 2.0);
}

}  // namespace
}  // namespace thermctl::hw
