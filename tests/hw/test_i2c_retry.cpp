#include "hw/i2c_retry.hpp"

#include <gtest/gtest.h>

namespace thermctl::hw {
namespace {

/// Minimal device for retry-path tests (register 1 read-only mirrors reg 0).
class EchoDevice final : public I2cSlave {
 public:
  std::optional<std::uint8_t> read_register(std::uint8_t reg) override {
    if (reg >= 2) {
      return std::nullopt;
    }
    return value_;
  }
  bool write_register(std::uint8_t reg, std::uint8_t value) override {
    if (reg != 0) {
      return false;
    }
    value_ = value;
    return true;
  }

 private:
  std::uint8_t value_ = 0x7E;
};

struct RetryRig {
  I2cBus bus;
  EchoDevice dev;
  RetryingI2cMaster master{bus};

  RetryRig() { bus.attach(0x2E, &dev); }
};

TEST(RetryingI2cMaster, CleanTransfersCostOneAttempt) {
  RetryRig rig;
  std::uint8_t out = 0;
  EXPECT_EQ(rig.master.read_byte_data(0x2E, 0, out), I2cStatus::kOk);
  EXPECT_EQ(out, 0x7E);
  EXPECT_EQ(rig.master.write_byte_data(0x2E, 0, 0x11), I2cStatus::kOk);
  const I2cErrorStats& s = rig.master.stats(0x2E);
  EXPECT_EQ(s.transfers, 2u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.backoff_us, 0u);
}

TEST(RetryingI2cMaster, TransientBusFaultIsAbsorbed) {
  RetryRig rig;
  rig.bus.inject_transient_bus_fault(2);  // budget is 3 attempts
  std::uint8_t out = 0;
  EXPECT_EQ(rig.master.read_byte_data(0x2E, 0, out), I2cStatus::kOk);
  EXPECT_EQ(out, 0x7E);
  const I2cErrorStats& s = rig.master.stats(0x2E);
  EXPECT_EQ(s.transfers, 1u);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.bus_faults, 2u);
  EXPECT_EQ(s.exhausted, 0u);
  // base + 2*base backoff before the two retries.
  EXPECT_EQ(s.backoff_us, 100u + 200u);
}

TEST(RetryingI2cMaster, PersistentFaultExhaustsBudget) {
  RetryRig rig;
  rig.bus.inject_bus_fault();
  std::uint8_t out = 0x42;
  EXPECT_EQ(rig.master.read_byte_data(0x2E, 0, out), I2cStatus::kBusFault);
  EXPECT_EQ(out, 0x42);  // untouched, same contract as the raw bus
  const I2cErrorStats& s = rig.master.stats(0x2E);
  EXPECT_EQ(s.transfers, 1u);
  EXPECT_EQ(s.retries, 2u);    // attempts 2 and 3
  EXPECT_EQ(s.bus_faults, 3u);
  EXPECT_EQ(s.exhausted, 1u);
  // Only 3 bus transactions happened — the budget bounds the bus traffic.
  EXPECT_EQ(rig.bus.log().size(), 3u);
}

TEST(RetryingI2cMaster, AddressNakIsRetried) {
  RetryRig rig;
  std::uint8_t out = 0;
  EXPECT_EQ(rig.master.read_byte_data(0x10, 0, out), I2cStatus::kAddressNak);
  const I2cErrorStats& s = rig.master.stats(0x10);
  EXPECT_EQ(s.naks, 3u);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.exhausted, 1u);
}

TEST(RetryingI2cMaster, RegisterNakFailsFast) {
  // A register NAK is the device *answering* — retrying would just repeat
  // the same deterministic rejection.
  RetryRig rig;
  EXPECT_EQ(rig.master.write_byte_data(0x2E, 1, 0x00), I2cStatus::kRegisterNak);
  const I2cErrorStats& s = rig.master.stats(0x2E);
  EXPECT_EQ(s.register_naks, 1u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.exhausted, 1u);
  EXPECT_EQ(rig.bus.log().size(), 1u);
}

TEST(RetryingI2cMaster, BackoffIsCapped) {
  I2cBus bus;
  I2cRetryConfig cfg;
  cfg.max_attempts = 8;
  cfg.base_backoff_us = 100;
  cfg.max_backoff_us = 500;
  RetryingI2cMaster master{bus, cfg};
  bus.inject_bus_fault();
  std::uint8_t out = 0;
  EXPECT_EQ(master.read_byte_data(0x2E, 0, out), I2cStatus::kBusFault);
  const I2cErrorStats& s = master.stats(0x2E);
  EXPECT_EQ(s.retries, 7u);
  // 100 + 200 + 400 + 500 + 500 + 500 + 500: capped after the third retry.
  EXPECT_EQ(s.backoff_us, 2700u);
}

TEST(RetryingI2cMaster, SingleAttemptConfigDisablesRetry) {
  I2cBus bus;
  EchoDevice dev;
  bus.attach(0x2E, &dev);
  RetryingI2cMaster master{bus, I2cRetryConfig{.max_attempts = 1}};
  bus.inject_transient_bus_fault(1);
  std::uint8_t out = 0;
  EXPECT_EQ(master.read_byte_data(0x2E, 0, out), I2cStatus::kBusFault);
  EXPECT_EQ(master.stats(0x2E).retries, 0u);
  EXPECT_EQ(master.stats(0x2E).exhausted, 1u);
}

TEST(RetryingI2cMaster, TotalAggregatesAcrossDevices) {
  RetryRig rig;
  std::uint8_t out = 0;
  rig.master.read_byte_data(0x2E, 0, out);
  rig.master.read_byte_data(0x10, 0, out);  // NAKs + exhausts
  const I2cErrorStats total = rig.master.total();
  EXPECT_EQ(total.transfers, 2u);
  EXPECT_EQ(total.naks, 3u);
  EXPECT_EQ(total.exhausted, 1u);
}

TEST(RetryingI2cMasterDeath, RejectsZeroAttempts) {
  I2cBus bus;
  EXPECT_DEATH(RetryingI2cMaster(bus, I2cRetryConfig{.max_attempts = 0}), "attempt");
}

}  // namespace
}  // namespace thermctl::hw
