#include "hw/cpu_device.hpp"

#include <gtest/gtest.h>

namespace thermctl::hw {
namespace {

using namespace thermctl::literals;

TEST(CpuDevice, DefaultLadderMatchesPaperPlatform) {
  CpuDevice cpu;
  ASSERT_EQ(cpu.pstate_count(), 5u);
  EXPECT_DOUBLE_EQ(cpu.max_frequency().value(), 2.4);
  EXPECT_DOUBLE_EQ(cpu.min_frequency().value(), 1.0);
  EXPECT_DOUBLE_EQ(cpu.frequency().value(), 2.4);  // boots at fastest
}

TEST(CpuDevice, SetPstateSwitches) {
  CpuDevice cpu;
  cpu.set_pstate(2);
  EXPECT_EQ(cpu.pstate_index(), 2u);
  EXPECT_DOUBLE_EQ(cpu.frequency().value(), 2.0);
}

TEST(CpuDevice, SetFrequencySnapsToNearest) {
  CpuDevice cpu;
  cpu.set_frequency(2.1_GHz);
  EXPECT_DOUBLE_EQ(cpu.frequency().value(), 2.2);  // 2.1 is nearer 2.2 than 2.0
  cpu.set_frequency(GigaHertz{1.3});
  EXPECT_DOUBLE_EQ(cpu.frequency().value(), 1.0);
}

TEST(CpuDevice, TransitionCountingOnlyOnChange) {
  CpuDevice cpu;
  EXPECT_EQ(cpu.transition_count(), 0u);
  cpu.set_pstate(0);  // no-op
  EXPECT_EQ(cpu.transition_count(), 0u);
  cpu.set_pstate(1);
  cpu.set_pstate(1);  // no-op
  cpu.set_pstate(0);
  EXPECT_EQ(cpu.transition_count(), 2u);
}

TEST(CpuDevice, TransitionStallAccumulates) {
  CpuParams params;
  params.transition_stall = Seconds{0.001};
  CpuDevice cpu{params};
  cpu.set_pstate(1);
  cpu.set_pstate(0);
  cpu.set_pstate(4);
  EXPECT_NEAR(cpu.transition_stall_total().value(), 0.003, 1e-12);
}

TEST(CpuDevice, PowerIncreasesWithUtilization) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{0.0});
  const double idle = cpu.power().value();
  cpu.set_utilization(Utilization{1.0});
  const double busy = cpu.power().value();
  EXPECT_GT(busy, idle * 2.0);
}

TEST(CpuDevice, PowerDropsSuperlinearlyWithFrequency) {
  // The paper's core claim about DVFS: lower frequency + lower voltage cuts
  // power faster than linearly in f.
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  cpu.set_pstate(0);  // 2.4 GHz @ 1.40 V
  const double p_fast = cpu.power().value();
  cpu.set_pstate(4);  // 1.0 GHz @ 1.10 V
  const double p_slow = cpu.power().value();
  const double freq_ratio = 1.0 / 2.4;
  EXPECT_LT(p_slow / p_fast, freq_ratio * 0.95 + 0.25);  // clearly sublinear scaling
  EXPECT_LT(p_slow, p_fast * 0.45);
}

TEST(CpuDevice, LeakageGrowsWithDieTemperature) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{0.5});
  cpu.set_die_temperature(Celsius{40.0});
  const double cool = cpu.power().value();
  cpu.set_die_temperature(Celsius{70.0});
  const double hot = cpu.power().value();
  EXPECT_GT(hot, cool);
  EXPECT_LT(hot - cool, 6.0);  // leakage delta is watts, not tens of watts
}

TEST(CpuDevice, FullLoadPowerIsAthlonClass) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  cpu.set_die_temperature(Celsius{55.0});
  const double p = cpu.power().value();
  EXPECT_GT(p, 45.0);
  EXPECT_LT(p, 75.0);  // Athlon64 4000+ is an 89 W-TDP part; cpu-burn draws less
}

TEST(CpuDevice, ThrottleReducesEffectiveFrequencyNotPstate) {
  CpuDevice cpu;
  cpu.set_pstate(0);
  cpu.set_thermal_throttle(true);
  EXPECT_DOUBLE_EQ(cpu.frequency().value(), 2.4);  // OS still sees 2.4
  EXPECT_DOUBLE_EQ(cpu.effective_frequency().value(), 1.0);
  EXPECT_EQ(cpu.transition_count(), 0u);  // PROCHOT is not a transition
  cpu.set_thermal_throttle(false);
  EXPECT_DOUBLE_EQ(cpu.effective_frequency().value(), 2.4);
}

TEST(CpuDevice, ThrottleCutsDynamicPower) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  const double normal = cpu.power().value();
  cpu.set_thermal_throttle(true);
  EXPECT_LT(cpu.power().value(), normal * 0.6);
}

TEST(CpuDevice, WorkCapacityScalesWithFrequencyAndUtilization) {
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  EXPECT_NEAR(cpu.work_capacity(Seconds{2.0}), 4.8, 1e-12);
  cpu.set_utilization(Utilization{0.5});
  EXPECT_NEAR(cpu.work_capacity(Seconds{2.0}), 2.4, 1e-12);
  cpu.set_pstate(4);
  EXPECT_NEAR(cpu.work_capacity(Seconds{2.0}), 1.0, 1e-12);
}

TEST(CpuDeviceDeath, RejectsOutOfRangePstate) {
  CpuDevice cpu;
  EXPECT_DEATH(cpu.set_pstate(5), "range");
}

TEST(CpuDeviceDeath, RejectsUnorderedPstates) {
  CpuParams params;
  params.pstates = {{2.0_GHz, Volts{1.3}}, {2.4_GHz, Volts{1.4}}};
  EXPECT_DEATH(CpuDevice{params}, "descending");
}

TEST(CpuDeviceDeath, RejectsEmptyPstates) {
  CpuParams params;
  params.pstates.clear();
  EXPECT_DEATH(CpuDevice{params}, "P-state");
}

// Power monotonicity across the whole ladder at full load.
class CpuLadderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CpuLadderSweep, SlowerPstateNeverDrawsMorePower) {
  const std::size_t idx = GetParam();
  CpuDevice cpu;
  cpu.set_utilization(Utilization{1.0});
  cpu.set_pstate(idx);
  const double p_here = cpu.power().value();
  if (idx + 1 < cpu.pstate_count()) {
    cpu.set_pstate(idx + 1);
    EXPECT_LT(cpu.power().value(), p_here);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPstates, CpuLadderSweep, ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace thermctl::hw
