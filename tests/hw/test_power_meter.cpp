#include "hw/power_meter.hpp"

#include <gtest/gtest.h>

namespace thermctl::hw {
namespace {

TEST(PowerMeter, ReadIncludesBaseLoadAndPsuLoss) {
  PowerMeterParams params;
  params.base_load = Watts{42.0};
  params.psu_efficiency = 0.84;
  PowerMeter meter{[] { return Watts{42.0}; }, params};
  // AC = (42 + 42) / 0.84 = 100 W exactly.
  EXPECT_NEAR(meter.read().value(), 100.0, 0.11);
}

TEST(PowerMeter, ResolutionRounding) {
  PowerMeterParams params;
  params.base_load = Watts{0.0};
  params.psu_efficiency = 1.0;
  params.resolution_watts = 0.5;
  PowerMeter meter{[] { return Watts{10.26}; }, params};
  EXPECT_DOUBLE_EQ(meter.read().value(), 10.5);
}

TEST(PowerMeter, EnergyIntegration) {
  PowerMeterParams params;
  params.base_load = Watts{50.0};
  params.psu_efficiency = 1.0;
  PowerMeter meter{[] { return Watts{50.0}; }, params};
  for (int i = 0; i < 100; ++i) {
    meter.integrate(Seconds{0.1});
  }
  EXPECT_NEAR(meter.energy().value(), 1000.0, 1e-6);  // 100 W * 10 s
  EXPECT_NEAR(meter.average_power().value(), 100.0, 1e-9);
}

TEST(PowerMeter, AverageTracksVaryingLoad) {
  double load = 0.0;
  PowerMeterParams params;
  params.base_load = Watts{0.0};
  params.psu_efficiency = 1.0;
  PowerMeter meter{[&load] { return Watts{load}; }, params};
  load = 30.0;
  meter.integrate(Seconds{10.0});
  load = 90.0;
  meter.integrate(Seconds{10.0});
  EXPECT_NEAR(meter.average_power().value(), 60.0, 1e-9);
}

TEST(PowerMeter, ResetClearsIntegrals) {
  PowerMeter meter{[] { return Watts{10.0}; }};
  meter.integrate(Seconds{5.0});
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.energy().value(), 0.0);
  EXPECT_DOUBLE_EQ(meter.average_power().value(), 0.0);
}

TEST(PowerMeterDeath, RejectsNullLoad) {
  EXPECT_DEATH(PowerMeter(nullptr), "load");
}

TEST(PowerMeterDeath, RejectsBadEfficiency) {
  PowerMeterParams params;
  params.psu_efficiency = 0.0;
  EXPECT_DEATH(PowerMeter([] { return Watts{0.0}; }, params), "efficiency");
}

}  // namespace
}  // namespace thermctl::hw
