#include "hw/adt7467.hpp"

#include <gtest/gtest.h>

namespace thermctl::hw {
namespace {

TEST(Adt7467, IdentificationRegisters) {
  Adt7467 chip;
  EXPECT_EQ(chip.read_register(Adt7467::kRegDeviceId).value(), Adt7467::kDeviceId);
  EXPECT_EQ(chip.read_register(Adt7467::kRegCompanyId).value(), Adt7467::kCompanyId);
}

TEST(Adt7467, UnknownRegisterNaks) {
  Adt7467 chip;
  EXPECT_FALSE(chip.read_register(0x00).has_value());
  EXPECT_FALSE(chip.write_register(0x00, 1));
}

TEST(Adt7467, DutyRegisterEncoding) {
  EXPECT_EQ(Adt7467::duty_to_reg(DutyCycle{0.0}), 0);
  EXPECT_EQ(Adt7467::duty_to_reg(DutyCycle{100.0}), 255);
  EXPECT_EQ(Adt7467::duty_to_reg(DutyCycle{50.0}), 128);
  EXPECT_NEAR(Adt7467::reg_to_duty(128).percent(), 50.2, 0.1);
  EXPECT_DOUBLE_EQ(Adt7467::reg_to_duty(255).percent(), 100.0);
}

TEST(Adt7467, TemperatureRegisterIsSignedCelsius) {
  Adt7467 chip;
  chip.set_measured_temperature(Celsius{51.4});
  EXPECT_EQ(chip.read_register(Adt7467::kRegTempRemote1).value(), 51);
  chip.set_measured_temperature(Celsius{-5.0});
  EXPECT_EQ(static_cast<std::int8_t>(chip.read_register(Adt7467::kRegTempRemote1).value()), -5);
}

TEST(Adt7467, TachEncodesRpm) {
  Adt7467 chip;
  chip.set_measured_rpm(Rpm{4300.0});
  const std::uint16_t count =
      static_cast<std::uint16_t>((chip.read_register(Adt7467::kRegTach1High).value() << 8) |
                                 chip.read_register(Adt7467::kRegTach1Low).value());
  EXPECT_NEAR(Adt7467::kTachClock / count, 4300.0, 5.0);
}

TEST(Adt7467, TachStalledReportsFFFF) {
  Adt7467 chip;
  chip.set_measured_rpm(Rpm{0.0});
  EXPECT_EQ(chip.read_register(Adt7467::kRegTach1Low).value(), 0xFF);
  EXPECT_EQ(chip.read_register(Adt7467::kRegTach1High).value(), 0xFF);
}

TEST(Adt7467, BootsInAutomaticMode) {
  Adt7467 chip;
  EXPECT_FALSE(chip.manual_mode());
}

TEST(Adt7467, AutoCurveMatchesFig1) {
  // PWMmin = 10% below Tmin = 38 °C, linear to 100% at Tmax = 82 °C.
  Adt7467 chip;
  EXPECT_NEAR(chip.auto_curve(Celsius{30.0}).percent(), 10.2, 0.5);
  EXPECT_NEAR(chip.auto_curve(Celsius{38.0}).percent(), 10.2, 0.5);
  EXPECT_NEAR(chip.auto_curve(Celsius{60.0}).percent(), 55.1, 1.0);  // halfway
  EXPECT_NEAR(chip.auto_curve(Celsius{82.0}).percent(), 100.0, 0.1);
  EXPECT_NEAR(chip.auto_curve(Celsius{95.0}).percent(), 100.0, 0.1);  // clamped
}

TEST(Adt7467, AutoModeTracksMeasurement) {
  Adt7467 chip;
  chip.set_measured_temperature(Celsius{38.0});
  const double cool_duty = chip.output_duty().percent();
  chip.set_measured_temperature(Celsius{70.0});
  EXPECT_GT(chip.output_duty().percent(), cool_duty + 30.0);
}

TEST(Adt7467, ManualWriteRejectedInAutoMode) {
  Adt7467 chip;
  EXPECT_FALSE(chip.write_register(Adt7467::kRegPwm1Duty, 200));
}

TEST(Adt7467, ManualModeAcceptsDutyWrites) {
  Adt7467 chip;
  ASSERT_TRUE(chip.write_register(Adt7467::kRegPwm1Config,
                                  static_cast<std::uint8_t>(Adt7467::kBehaviourManual << 5)));
  EXPECT_TRUE(chip.manual_mode());
  ASSERT_TRUE(chip.write_register(Adt7467::kRegPwm1Duty, 200));
  EXPECT_NEAR(chip.output_duty().percent(), 78.4, 0.2);
  // Temperature changes no longer move the output.
  chip.set_measured_temperature(Celsius{80.0});
  EXPECT_NEAR(chip.output_duty().percent(), 78.4, 0.2);
}

TEST(Adt7467, ReturnToAutoRecomputesOutput) {
  Adt7467 chip;
  chip.write_register(Adt7467::kRegPwm1Config,
                      static_cast<std::uint8_t>(Adt7467::kBehaviourManual << 5));
  chip.write_register(Adt7467::kRegPwm1Duty, 255);
  chip.set_measured_temperature(Celsius{38.0});
  chip.write_register(Adt7467::kRegPwm1Config,
                      static_cast<std::uint8_t>(Adt7467::kBehaviourAutoRemote1 << 5));
  EXPECT_LT(chip.output_duty().percent(), 15.0);  // back on the curve
}

TEST(Adt7467, PwmMaxClampsAutoCurve) {
  Adt7467 chip;
  chip.write_register(Adt7467::kRegPwm1Max, Adt7467::duty_to_reg(DutyCycle{75.0}));
  chip.set_measured_temperature(Celsius{90.0});
  EXPECT_NEAR(chip.output_duty().percent(), 75.0, 0.5);
}

TEST(Adt7467, CurveParametersProgrammable) {
  Adt7467 chip;
  chip.write_register(Adt7467::kRegTminRemote1, 45);
  chip.write_register(Adt7467::kRegTrangeRemote1, 20);
  chip.write_register(Adt7467::kRegPwm1Min, Adt7467::duty_to_reg(DutyCycle{20.0}));
  EXPECT_NEAR(chip.auto_curve(Celsius{45.0}).percent(), 20.0, 0.5);
  EXPECT_NEAR(chip.auto_curve(Celsius{65.0}).percent(), 100.0, 0.5);
  EXPECT_NEAR(chip.auto_curve(Celsius{55.0}).percent(), 60.0, 1.0);
}

TEST(Adt7467, ReadbackOfConfigRegisters) {
  Adt7467 chip;
  chip.write_register(Adt7467::kRegTminRemote1, 40);
  EXPECT_EQ(chip.read_register(Adt7467::kRegTminRemote1).value(), 40);
  chip.write_register(Adt7467::kRegPwm1Min, 51);
  EXPECT_EQ(chip.read_register(Adt7467::kRegPwm1Min).value(), 51);
  EXPECT_EQ(chip.read_register(Adt7467::kRegTrangeRemote1).value(), 44);
}

}  // namespace
}  // namespace thermctl::hw
