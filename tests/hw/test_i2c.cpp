#include "hw/i2c.hpp"

#include <gtest/gtest.h>

namespace thermctl::hw {
namespace {

/// A trivial 4-register device for protocol tests.
class ScratchDevice final : public I2cSlave {
 public:
  std::optional<std::uint8_t> read_register(std::uint8_t reg) override {
    if (reg >= 4) {
      return std::nullopt;
    }
    return regs_[reg];
  }
  bool write_register(std::uint8_t reg, std::uint8_t value) override {
    if (reg >= 4 || reg == 3) {  // register 3 is read-only
      return false;
    }
    regs_[reg] = value;
    return true;
  }

 private:
  std::uint8_t regs_[4] = {0xAA, 0xBB, 0xCC, 0xDD};
};

TEST(I2cBus, ReadWriteRoundTrip) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  EXPECT_EQ(bus.write_byte_data(0x2E, 1, 0x42), I2cStatus::kOk);
  std::uint8_t out = 0;
  EXPECT_EQ(bus.read_byte_data(0x2E, 1, out), I2cStatus::kOk);
  EXPECT_EQ(out, 0x42);
}

TEST(I2cBus, AbsentAddressNaks) {
  I2cBus bus;
  std::uint8_t out = 0;
  EXPECT_EQ(bus.read_byte_data(0x10, 0, out), I2cStatus::kAddressNak);
  EXPECT_EQ(bus.write_byte_data(0x10, 0, 1), I2cStatus::kAddressNak);
}

TEST(I2cBus, RegisterNakPropagates) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  std::uint8_t out = 0;
  EXPECT_EQ(bus.read_byte_data(0x2E, 9, out), I2cStatus::kRegisterNak);
  EXPECT_EQ(bus.write_byte_data(0x2E, 3, 1), I2cStatus::kRegisterNak);  // read-only
}

TEST(I2cBus, BusFaultFailsEverything) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  bus.inject_bus_fault();
  std::uint8_t out = 0;
  EXPECT_EQ(bus.read_byte_data(0x2E, 0, out), I2cStatus::kBusFault);
  EXPECT_EQ(bus.write_byte_data(0x2E, 0, 1), I2cStatus::kBusFault);
  bus.clear_bus_fault();
  EXPECT_EQ(bus.read_byte_data(0x2E, 0, out), I2cStatus::kOk);
}

TEST(I2cBus, DetachRemovesDevice) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  bus.detach(0x2E);
  std::uint8_t out = 0;
  EXPECT_EQ(bus.read_byte_data(0x2E, 0, out), I2cStatus::kAddressNak);
}

TEST(I2cBus, TransactionLogRecordsEverything) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  bus.clear_log();
  std::uint8_t out = 0;
  bus.read_byte_data(0x2E, 0, out);
  bus.write_byte_data(0x2E, 1, 0x55);
  bus.read_byte_data(0x30, 0, out);  // NAK
  ASSERT_EQ(bus.log().size(), 3u);
  EXPECT_FALSE(bus.log()[0].is_write);
  EXPECT_EQ(bus.log()[0].value, 0xAA);
  EXPECT_TRUE(bus.log()[1].is_write);
  EXPECT_EQ(bus.log()[1].value, 0x55);
  EXPECT_EQ(bus.log()[2].status, I2cStatus::kAddressNak);
}

TEST(I2cBus, LogCapEvictsOldEntries) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  bus.set_log_limit(16);
  std::uint8_t out = 0;
  for (int i = 0; i < 100; ++i) {
    bus.read_byte_data(0x2E, 0, out);
  }
  EXPECT_LE(bus.log().size(), 16u);
}

TEST(I2cBus, LogCapOfOneStillCaps) {
  // Regression: the evictor erased limit/2 entries, which is zero at limit
  // 1, so the log grew without bound.
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  bus.set_log_limit(1);
  std::uint8_t out = 0;
  for (int i = 0; i < 100; ++i) {
    bus.read_byte_data(0x2E, 0, out);
  }
  EXPECT_LE(bus.log().size(), 1u);
}

TEST(I2cBus, FailedReadLeavesOutUntouched) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  std::uint8_t out = 0x5A;
  EXPECT_EQ(bus.read_byte_data(0x10, 0, out), I2cStatus::kAddressNak);
  EXPECT_EQ(out, 0x5A);
  EXPECT_EQ(bus.read_byte_data(0x2E, 9, out), I2cStatus::kRegisterNak);
  EXPECT_EQ(out, 0x5A);
  bus.inject_bus_fault();
  EXPECT_EQ(bus.read_byte_data(0x2E, 0, out), I2cStatus::kBusFault);
  EXPECT_EQ(out, 0x5A);
}

TEST(I2cBus, TransientFaultRecoversByItself) {
  I2cBus bus;
  ScratchDevice dev;
  bus.attach(0x2E, &dev);
  bus.inject_transient_bus_fault(2);
  EXPECT_TRUE(bus.faulted());
  std::uint8_t out = 0;
  EXPECT_EQ(bus.read_byte_data(0x2E, 0, out), I2cStatus::kBusFault);
  EXPECT_EQ(bus.write_byte_data(0x2E, 1, 0x11), I2cStatus::kBusFault);
  // Glitch over: the third transfer succeeds with no clear call.
  EXPECT_EQ(bus.read_byte_data(0x2E, 0, out), I2cStatus::kOk);
  EXPECT_FALSE(bus.faulted());
}

TEST(I2cBusDeath, DoubleAttachAborts) {
  I2cBus bus;
  ScratchDevice a;
  ScratchDevice b;
  bus.attach(0x2E, &a);
  EXPECT_DEATH(bus.attach(0x2E, &b), "in use");
}

TEST(I2cBusDeath, EightBitAddressAborts) {
  I2cBus bus;
  ScratchDevice dev;
  EXPECT_DEATH(bus.attach(0x80, &dev), "7-bit");
}

}  // namespace
}  // namespace thermctl::hw
