#include "hw/fan_device.hpp"

#include <gtest/gtest.h>

namespace thermctl::hw {
namespace {

TEST(FanDevice, StartsStopped) {
  FanDevice fan;
  EXPECT_DOUBLE_EQ(fan.rpm().value(), 0.0);
  EXPECT_DOUBLE_EQ(fan.airflow().value(), 0.0);
}

TEST(FanDevice, FullDutyReachesMaxRpm) {
  FanDevice fan;
  fan.set_duty(DutyCycle{100.0});
  fan.settle();
  EXPECT_NEAR(fan.rpm().value(), 4300.0, 1.0);
}

TEST(FanDevice, BelowStallDutyDoesNotSpin) {
  FanDevice fan;
  fan.set_duty(DutyCycle{2.0});  // below the 4% stall threshold
  fan.settle();
  EXPECT_DOUBLE_EQ(fan.rpm().value(), 0.0);
}

TEST(FanDevice, TargetRpmMonotoneInDuty) {
  FanDevice fan;
  double prev = -1.0;
  for (double d = 5.0; d <= 100.0; d += 5.0) {
    const double rpm = fan.target_rpm(DutyCycle{d}).value();
    EXPECT_GT(rpm, prev);
    prev = rpm;
  }
}

TEST(FanDevice, RotorLagApproachesTarget) {
  FanDevice fan;
  fan.set_duty(DutyCycle{100.0});
  fan.step(Seconds{0.8});  // one rotor time constant
  const double frac = fan.rpm().value() / 4300.0;
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.75);  // ~1 - 1/e
  fan.step(Seconds{8.0});
  EXPECT_NEAR(fan.rpm().value(), 4300.0, 5.0);
}

TEST(FanDevice, SpinDownTakesTime) {
  FanDevice fan;
  fan.set_duty(DutyCycle{100.0});
  fan.settle();
  fan.set_duty(DutyCycle{10.0});
  fan.step(Seconds{0.2});
  EXPECT_GT(fan.rpm().value(), 2500.0);  // still coasting
  fan.step(Seconds{8.0});
  EXPECT_NEAR(fan.rpm().value(), fan.target_rpm(DutyCycle{10.0}).value(), 10.0);
}

TEST(FanDevice, AirflowProportionalToRpm) {
  FanDevice fan;
  fan.set_duty(DutyCycle{100.0});
  fan.settle();
  EXPECT_NEAR(fan.airflow().value(), 32.0, 0.1);
  fan.set_duty(DutyCycle{52.0});
  fan.settle();
  EXPECT_NEAR(fan.airflow().value() / 32.0, fan.rpm().value() / 4300.0, 1e-9);
}

TEST(FanDevice, PowerFollowsCubicAffinityLaw) {
  FanDevice fan;
  fan.set_duty(DutyCycle{100.0});
  fan.settle();
  const double p_full = fan.power().value() - fan.params().idle_power.value();
  EXPECT_NEAR(p_full, 5.5, 0.05);

  fan.set_duty(DutyCycle{52.0});  // ~half RPM
  fan.settle();
  const double frac = fan.rpm().value() / 4300.0;
  const double p_half = fan.power().value() - fan.params().idle_power.value();
  EXPECT_NEAR(p_half, 5.5 * frac * frac * frac, 0.05);
}

TEST(FanDevice, StuckFaultCoastsToZeroAndIgnoresCommands) {
  FanDevice fan;
  fan.set_duty(DutyCycle{80.0});
  fan.settle();
  fan.inject_stuck_fault();
  EXPECT_TRUE(fan.faulted());
  fan.set_duty(DutyCycle{100.0});
  fan.step(Seconds{10.0});
  EXPECT_DOUBLE_EQ(fan.rpm().value(), 0.0);
}

TEST(FanDevice, ClearFaultRestoresOperation) {
  FanDevice fan;
  fan.inject_stuck_fault();
  fan.set_duty(DutyCycle{100.0});
  fan.step(Seconds{5.0});
  fan.clear_fault();
  fan.step(Seconds{8.0});
  EXPECT_GT(fan.rpm().value(), 4000.0);
}

TEST(FanDevice, IdlePowerOnlyWhenStopped) {
  FanDevice fan;
  EXPECT_NEAR(fan.power().value(), fan.params().idle_power.value(), 1e-9);
}

TEST(FanDeviceDeath, RejectsNonPositiveStep) {
  FanDevice fan;
  EXPECT_DEATH(fan.step(Seconds{0.0}), "positive");
}

}  // namespace
}  // namespace thermctl::hw
