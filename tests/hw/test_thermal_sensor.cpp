#include "hw/thermal_sensor.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace thermctl::hw {
namespace {

SensorParams noiseless() {
  SensorParams p;
  p.noise_sigma_degc = 0.0;
  p.quantization_degc = 0.25;
  return p;
}

TEST(ThermalSensor, QuantizesToStep) {
  double truth = 42.37;
  ThermalSensor s{[&truth] { return Celsius{truth}; }, noiseless(), Rng{1}};
  EXPECT_DOUBLE_EQ(s.sample().value(), 42.25);
  truth = 42.40;
  EXPECT_DOUBLE_EQ(s.sample().value(), 42.50);
}

TEST(ThermalSensor, CoarseQuantization) {
  SensorParams p = noiseless();
  p.quantization_degc = 1.0;  // k8temp-style integer reporting
  ThermalSensor s{[] { return Celsius{51.6}; }, p, Rng{1}};
  EXPECT_DOUBLE_EQ(s.sample().value(), 52.0);
}

TEST(ThermalSensor, OffsetApplied) {
  SensorParams p = noiseless();
  p.offset_degc = 2.0;
  ThermalSensor s{[] { return Celsius{40.0}; }, p, Rng{1}};
  EXPECT_DOUBLE_EQ(s.sample().value(), 42.0);
}

TEST(ThermalSensor, SampleAndHold) {
  double truth = 40.0;
  ThermalSensor s{[&truth] { return Celsius{truth}; }, noiseless(), Rng{1}};
  s.sample();
  truth = 60.0;
  // last_reading() must not resample.
  EXPECT_DOUBLE_EQ(s.last_reading().value(), 40.0);
  EXPECT_DOUBLE_EQ(s.sample().value(), 60.0);
}

TEST(ThermalSensor, NoiseIsZeroMeanAndBounded) {
  SensorParams p;
  p.noise_sigma_degc = 0.18;
  p.quantization_degc = 0.25;
  ThermalSensor s{[] { return Celsius{50.0}; }, p, Rng{42}};
  double sum = 0.0;
  double max_dev = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double v = s.sample().value();
    sum += v;
    max_dev = std::max(max_dev, std::abs(v - 50.0));
  }
  EXPECT_NEAR(sum / n, 50.0, 0.02);
  EXPECT_LT(max_dev, 1.5);  // ~8 sigma; no wild outliers
  EXPECT_GT(max_dev, 0.2);  // noise actually present (jitter source)
}

TEST(ThermalSensor, NoiseProducesTypeIIIJitter) {
  // Quantized noisy readings of a constant temperature must toggle between
  // adjacent codes — the Type III signature the controller must ignore.
  SensorParams p;
  p.noise_sigma_degc = 0.18;
  ThermalSensor s{[] { return Celsius{50.1}; }, p, Rng{7}};
  int distinct_transitions = 0;
  double prev = s.sample().value();
  for (int i = 0; i < 200; ++i) {
    const double v = s.sample().value();
    if (v != prev) {
      ++distinct_transitions;
    }
    prev = v;
  }
  EXPECT_GT(distinct_transitions, 10);
}

TEST(ThermalSensor, StuckFaultFreezesReading) {
  double truth = 40.0;
  ThermalSensor s{[&truth] { return Celsius{truth}; }, noiseless(), Rng{1}};
  s.sample();
  s.inject_stuck_fault();
  truth = 80.0;
  EXPECT_DOUBLE_EQ(s.sample().value(), 40.0);  // frozen
  s.clear_fault();
  EXPECT_DOUBLE_EQ(s.sample().value(), 80.0);
}

TEST(ThermalSensor, StuckBeforeFirstSampleHoldsFirstRealReading) {
  // Regression: a fault injected before any sample() must not freeze the
  // constructed 0.0 °C placeholder — a frozen register holds its last
  // *conversion*, and the first conversion happens at the first sample.
  double truth = 55.0;
  ThermalSensor s{[&truth] { return Celsius{truth}; }, noiseless(), Rng{1}};
  s.inject_stuck_fault();
  EXPECT_FALSE(s.ready());
  EXPECT_DOUBLE_EQ(s.sample().value(), 55.0);  // real reading, not 0.0
  EXPECT_TRUE(s.ready());
  truth = 80.0;
  EXPECT_DOUBLE_EQ(s.sample().value(), 55.0);  // now frozen at the first one
}

TEST(ThermalSensor, ReadyFlipsOnFirstSample) {
  ThermalSensor s{[] { return Celsius{40.0}; }, noiseless(), Rng{1}};
  EXPECT_FALSE(s.ready());
  s.sample();
  EXPECT_TRUE(s.ready());
}

TEST(ThermalSensor, DeterministicGivenSeed) {
  SensorParams p;
  p.noise_sigma_degc = 0.2;
  ThermalSensor a{[] { return Celsius{45.0}; }, p, Rng{99}};
  ThermalSensor b{[] { return Celsius{45.0}; }, p, Rng{99}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.sample().value(), b.sample().value());
  }
}

TEST(ThermalSensorDeath, RejectsNullSource) {
  EXPECT_DEATH(ThermalSensor(nullptr, SensorParams{}, Rng{1}), "source");
}

TEST(ThermalSensorDeath, RejectsNonPositiveQuantization) {
  SensorParams p;
  p.quantization_degc = 0.0;
  EXPECT_DEATH(ThermalSensor([] { return Celsius{0.0}; }, p, Rng{1}), "quantization");
}

}  // namespace
}  // namespace thermctl::hw
