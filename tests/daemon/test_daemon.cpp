// Daemon lifecycle tests: socket protocol, hot policy reload under
// concurrent clients, watchdog stall → failsafe → recovery, and clean
// shutdown mid-spill.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.hpp"
#include "obs/trace_io.hpp"

namespace thermctl::daemon {
namespace {

using namespace std::chrono_literals;

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/thermctld_t" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A long-lived rig the tests end via `shutdown`: small fleet, idle load,
/// horizon far beyond what any test lets elapse.
core::ExperimentConfig service_config() {
  core::ExperimentConfig cfg = core::paper_platform();
  cfg.name = "daemon-test";
  cfg.nodes = 4;
  cfg.workload = core::WorkloadKind::kIdle;
  cfg.engine.horizon = Seconds{100000.0};
  cfg.telemetry.metrics = true;
  cfg.telemetry.rollup.enabled = true;
  cfg.telemetry.rollup.interval_s = 1.0;
  return cfg;
}

int connect_client(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // The server binds before run() starts, so a short retry loop is enough.
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(10ms);
  }
  ADD_FAILURE() << "could not connect to " << path;
  ::close(fd);
  return -1;
}

/// Sends one request line and reads until `terminator` (single-line replies
/// end in '\n'; metrics bodies end in "# EOF\n").
std::string request(int fd, const std::string& line, const std::string& terminator = "\n") {
  const std::string out = line + "\n";
  EXPECT_EQ(::write(fd, out.data(), out.size()), static_cast<ssize_t>(out.size()));
  std::string response;
  char chunk[4096];
  while (response.size() < terminator.size() ||
         response.compare(response.size() - terminator.size(), terminator.size(),
                          terminator) != 0) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      ADD_FAILURE() << "connection dropped mid-response to: " << line;
      break;
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(DaemonProtocol, HandlesRequestsAndRejectsBadInput) {
  DaemonConfig dc;
  dc.experiment = service_config();
  Daemon d{dc};  // never run: handle_request works pre-run too
  EXPECT_EQ(d.handle_request("ping"), "OK pong");
  EXPECT_EQ(d.handle_request("set-policy 25"), "OK pp=25");
  EXPECT_EQ(d.handle_request("set-policy 0").rfind("ERR", 0), 0u);
  EXPECT_EQ(d.handle_request("set-policy 101").rfind("ERR", 0), 0u);
  EXPECT_EQ(d.handle_request("set-policy x").rfind("ERR", 0), 0u);
  EXPECT_EQ(d.handle_request("set-budget 450"), "OK budget_w=" + std::to_string(450.0));
  EXPECT_EQ(d.handle_request("set-budget -3").rfind("ERR", 0), 0u);
  EXPECT_EQ(d.handle_request("frobnicate").rfind("ERR unknown-command", 0), 0u);
  EXPECT_EQ(d.handle_request("metrics"), "# EOF\n");  // no exposition yet
  EXPECT_EQ(d.handle_request("status").rfind("OK ", 0), 0u);
  EXPECT_EQ(d.stats().commands_enqueued, 2u);  // the two accepted mutations
}

TEST(DaemonLifecycle, ConcurrentClientsDuringHotReload) {
  DaemonConfig dc;
  dc.socket_path = unique_socket_path();
  dc.experiment = service_config();
  Daemon d{dc};

  core::ExperimentResult result;
  std::thread runner{[&] { result = d.run(); }};

  // Several clients hammer reads while the policy is re-tuned hot.
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 20;
  std::atomic<int> ok_responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_client(dc.socket_path);
      ASSERT_GE(fd, 0);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        if (i % 3 == 2) {
          const std::string body = request(fd, "metrics", "# EOF\n");
          if (body.size() >= 6 && body.substr(body.size() - 6) == "# EOF\n") {
            ok_responses.fetch_add(1);
          }
        } else {
          const std::string line = request(fd, i % 3 == 0 ? "status" : "ping");
          if (line.rfind("OK", 0) == 0) {
            ok_responses.fetch_add(1);
          }
        }
      }
      if (c == 0) {
        EXPECT_EQ(request(fd, "set-policy 25"), "OK pp=25\n");
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // The re-tune lands within one control round: poll status until pp=25.
  const int fd = connect_client(dc.socket_path);
  ASSERT_GE(fd, 0);
  bool applied = false;
  for (int attempt = 0; attempt < 300 && !applied; ++attempt) {
    applied = request(fd, "status").find(" pp=25 ") != std::string::npos;
    if (!applied) {
      std::this_thread::sleep_for(10ms);
    }
  }
  EXPECT_TRUE(applied) << "set-policy 25 not visible in status";
  EXPECT_EQ(request(fd, "shutdown"), "OK shutting-down\n");
  ::close(fd);
  runner.join();

  EXPECT_EQ(ok_responses.load(), kClients * kRequestsPerClient);
  const DaemonStats stats = d.stats();
  EXPECT_EQ(stats.commands_applied, stats.commands_enqueued);
  EXPECT_EQ(stats.failsafe_entries, 0u);
  EXPECT_GE(stats.clients_accepted, static_cast<std::uint64_t>(kClients));
  // Zero dropped rounds: one control round per period of elapsed sim time.
  const auto expected_rounds = static_cast<std::uint64_t>(result.run.exec_time_s /
                                                          dc.control_period_s);
  EXPECT_GE(stats.control_rounds + 1, expected_rounds);
}

TEST(DaemonLifecycle, WatchdogStallFailsafeAndRecovery) {
  DaemonConfig dc;
  dc.experiment = service_config();
  dc.watchdog_timeout_s = 0.2;
  Daemon d{dc};

  core::ExperimentResult result;
  std::thread runner{[&] { result = d.run(); }};
  std::this_thread::sleep_for(100ms);

  // Wedge one control round for 3x the deadman timeout: the watchdog must
  // fail safe mid-stall, and the next live round must recover.
  d.post_stall(600.0);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (d.stats().failsafe_recoveries == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
  }
  d.post_shutdown();
  runner.join();

  const DaemonStats stats = d.stats();
  EXPECT_GE(stats.failsafe_entries, 1u);
  EXPECT_GE(stats.failsafe_recoveries, 1u);
  EXPECT_FALSE(d.in_failsafe());
  EXPECT_EQ(stats.commands_applied, stats.commands_enqueued);
}

TEST(DaemonLifecycle, PauseFreezesSimTimeAndResumeContinues) {
  DaemonConfig dc;
  dc.experiment = service_config();
  dc.watchdog_timeout_s = 0.2;  // must NOT fire while paused
  Daemon d{dc};

  core::ExperimentResult result;
  std::thread runner{[&] { result = d.run(); }};
  std::this_thread::sleep_for(50ms);

  d.post_pause();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!d.paused() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(d.paused());
  // Paused across 3x the deadman timeout: an operator freeze is not a stall.
  std::this_thread::sleep_for(600ms);
  EXPECT_FALSE(d.in_failsafe());
  EXPECT_EQ(d.stats().failsafe_entries, 0u);

  d.post_resume();
  d.post_shutdown();
  runner.join();
  EXPECT_EQ(d.stats().failsafe_entries, 0u);
}

TEST(DaemonLifecycle, ShutdownMidDrainLeavesReadableSpill) {
  const std::string spill_path = "/tmp/thermctld_spill_" + std::to_string(::getpid()) +
                                 ".thermtrace";
  DaemonConfig dc;
  dc.experiment = service_config();
  dc.experiment.dvfs = core::DvfsPolicyKind::kTdvfs;  // trace traffic
  dc.experiment.telemetry.trace = true;
  dc.experiment.telemetry.spill = true;
  dc.experiment.telemetry.spill_path = spill_path;
  dc.experiment.telemetry.spill_cfg.period_s = 0.5;
  dc.experiment.telemetry.spill_cfg.max_events_per_drain = 4;  // force deferrals
  Daemon d{dc};

  core::ExperimentResult result;
  std::thread runner{[&] { result = d.run(); }};
  std::this_thread::sleep_for(300ms);
  d.post_shutdown();
  runner.join();

  // Stopped well short of the horizon, with the spill finalized exactly as
  // on a natural exit.
  EXPECT_LT(result.run.exec_time_s, dc.experiment.engine.horizon.value());
  ASSERT_TRUE(result.spill.has_value());
  const obs::TraceFile file = obs::read_trace_file(spill_path);
  EXPECT_EQ(file.node_count, 4u);
  EXPECT_GT(file.events.size(), 0u);
  for (std::size_t i = 1; i < file.events.size(); ++i) {
    const obs::TraceEvent& prev = file.events[i - 1];
    const obs::TraceEvent& cur = file.events[i];
    EXPECT_TRUE(prev.t_s < cur.t_s || (prev.t_s == cur.t_s && prev.node <= cur.node))
        << "spill unsorted at " << i;
  }
  std::remove(spill_path.c_str());
}

}  // namespace
}  // namespace thermctl::daemon
