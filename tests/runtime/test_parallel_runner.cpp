// ParallelRunner / run_sweep determinism contract: a parallel sweep is
// observationally identical to the same sweep run serially — results come
// back in input order and are bit-identical run-for-run.
#include "runtime/parallel_runner.hpp"

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "runtime/sweep.hpp"

namespace thermctl::runtime {
namespace {

TEST(ParallelRunner, MapReturnsResultsInInputOrder) {
  ParallelRunner runner{4};
  const std::vector<int> out = runner.map<int>(64, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelRunner, ForEachVisitsEveryIndexOnce) {
  ParallelRunner runner{3};
  std::vector<std::atomic<int>> hits(32);
  runner.for_each(32, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelRunner, FirstExceptionByIndexIsRethrown) {
  ParallelRunner runner{4};
  try {
    runner.map<int>(8, [](std::size_t i) -> int {
      if (i == 2 || i == 5) {
        throw std::runtime_error("job " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 2");  // lowest failing index wins
  }
}

TEST(ParallelRunner, ZeroJobsIsANoop) {
  ParallelRunner runner{2};
  const std::vector<int> out = runner.map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(SweepSeed, PointSeedsAreDecorrelatedAndStable) {
  const std::uint64_t base = 20260708;
  // Deterministic: same inputs, same seed.
  EXPECT_EQ(sweep_point_seed(base, 0), sweep_point_seed(base, 0));
  // Distinct across points and from the base.
  std::set<std::uint64_t> seen;
  seen.insert(base);
  for (std::size_t p = 0; p < 64; ++p) {
    seen.insert(sweep_point_seed(base, p));
  }
  EXPECT_EQ(seen.size(), 65u);
}

// ---- experiment-level determinism ----

std::vector<core::ExperimentConfig> tiny_sweep() {
  std::vector<core::ExperimentConfig> configs;
  for (int pp : {25, 40, 55, 70}) {
    core::ExperimentConfig cfg = core::paper_platform();
    cfg.name = "sweep_pp" + std::to_string(pp);
    cfg.nodes = 2;
    cfg.workload = core::WorkloadKind::kNpbBt;
    cfg.npb_iterations_override = 5;
    cfg.fan = core::FanPolicyKind::kDynamic;
    cfg.dvfs = core::DvfsPolicyKind::kTdvfs;
    cfg.pp = core::PolicyParam{pp};
    cfg.max_duty = DutyCycle{50.0};
    configs.push_back(cfg);
  }
  return configs;
}

void expect_bit_identical(const cluster::RunResult& a, const cluster::RunResult& b) {
  EXPECT_EQ(a.times, b.times);
  EXPECT_EQ(a.app_completed, b.app_completed);
  EXPECT_EQ(a.exec_time_s, b.exec_time_s);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].die_temp, b.nodes[i].die_temp) << "node " << i;
    EXPECT_EQ(a.nodes[i].sensor_temp, b.nodes[i].sensor_temp) << "node " << i;
    EXPECT_EQ(a.nodes[i].duty, b.nodes[i].duty) << "node " << i;
    EXPECT_EQ(a.nodes[i].rpm, b.nodes[i].rpm) << "node " << i;
    EXPECT_EQ(a.nodes[i].freq_ghz, b.nodes[i].freq_ghz) << "node " << i;
    EXPECT_EQ(a.nodes[i].power_w, b.nodes[i].power_w) << "node " << i;
    EXPECT_EQ(a.nodes[i].util, b.nodes[i].util) << "node " << i;
    EXPECT_EQ(a.nodes[i].activity, b.nodes[i].activity) << "node " << i;
  }
  ASSERT_EQ(a.summaries.size(), b.summaries.size());
  for (std::size_t i = 0; i < a.summaries.size(); ++i) {
    EXPECT_EQ(a.summaries[i].avg_die_temp, b.summaries[i].avg_die_temp);
    EXPECT_EQ(a.summaries[i].max_die_temp, b.summaries[i].max_die_temp);
    EXPECT_EQ(a.summaries[i].avg_duty, b.summaries[i].avg_duty);
    EXPECT_EQ(a.summaries[i].avg_power_w, b.summaries[i].avg_power_w);
    EXPECT_EQ(a.summaries[i].energy_j, b.summaries[i].energy_j);
    EXPECT_EQ(a.summaries[i].freq_transitions, b.summaries[i].freq_transitions);
    EXPECT_EQ(a.summaries[i].prochot_events, b.summaries[i].prochot_events);
  }
}

TEST(RunSweep, ParallelSweepBitIdenticalToSerial) {
  const auto configs = tiny_sweep();
  const auto serial = run_sweep(configs, {.threads = 1});
  const auto parallel = run_sweep(configs, {.threads = 4});
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("sweep point " + std::to_string(i));
    expect_bit_identical(serial[i].run, parallel[i].run);
    EXPECT_EQ(serial[i].first_dvfs_trigger_s, parallel[i].first_dvfs_trigger_s);
    ASSERT_EQ(serial[i].fan_events.size(), parallel[i].fan_events.size());
    for (std::size_t n = 0; n < serial[i].fan_events.size(); ++n) {
      EXPECT_EQ(serial[i].fan_events[n].size(), parallel[i].fan_events[n].size());
    }
  }
}

TEST(RunSweep, RepeatedParallelSweepsAreReproducible) {
  const auto configs = tiny_sweep();
  const auto first = run_sweep(configs, {.threads = 3});
  const auto second = run_sweep(configs, {.threads = 3});
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE("sweep point " + std::to_string(i));
    expect_bit_identical(first[i].run, second[i].run);
  }
}

}  // namespace
}  // namespace thermctl::runtime
