#include "runtime/thread_pool.hpp"

#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace thermctl::runtime {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleWorkerIsValidDegenerateCase) {
  ThreadPool pool{1};
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  // With one worker the FIFO queue is a total order — tasks run exactly in
  // submission order (the property sweep determinism leans on).
  ThreadPool pool{1};
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, WaitIdleReturnsImmediatelyWhenEmpty) {
  ThreadPool pool{2};
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, WorkSubmittedAfterWaitIdleStillRuns) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
  ThreadPool pool{};  // default-sized pool comes up and drains
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace thermctl::runtime
