#include "sysfs/powerclamp.hpp"

#include <gtest/gtest.h>

#include "hw/cpu_device.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {
namespace {

struct ClampRig {
  VirtualFs fs;
  hw::CpuDevice cpu;
  PowerClampDevice clamp{fs, "/sys/class/thermal", 0, cpu};
};

TEST(PowerClamp, TypeAttribute) {
  ClampRig rig;
  EXPECT_EQ(rig.fs.read("/sys/class/thermal/cooling_device0/type").value(),
            "intel_powerclamp");
}

TEST(PowerClamp, MaxStateFromInjectorCap) {
  ClampRig rig;
  EXPECT_EQ(rig.clamp.max_state(), 50);
  EXPECT_EQ(rig.fs.read_long("/sys/class/thermal/cooling_device0/max_state").value(), 50);
}

TEST(PowerClamp, CurStateWriteDrivesInjector) {
  ClampRig rig;
  ASSERT_TRUE(rig.fs.write("/sys/class/thermal/cooling_device0/cur_state", "30"));
  EXPECT_NEAR(rig.cpu.idle_injector().fraction(), 0.30, 1e-9);
  EXPECT_EQ(rig.clamp.cur_state(), 30);
}

TEST(PowerClamp, RejectsOutOfRangeStates) {
  ClampRig rig;
  EXPECT_FALSE(rig.fs.write("/sys/class/thermal/cooling_device0/cur_state", "51"));
  EXPECT_FALSE(rig.fs.write("/sys/class/thermal/cooling_device0/cur_state", "-1"));
  EXPECT_FALSE(rig.fs.write("/sys/class/thermal/cooling_device0/cur_state", "max"));
}

TEST(PowerClamp, ZeroReleasesInjection) {
  ClampRig rig;
  rig.clamp.set_cur_state(40);
  ASSERT_TRUE(rig.cpu.idle_injector().active());
  rig.clamp.set_cur_state(0);
  EXPECT_FALSE(rig.cpu.idle_injector().active());
}

TEST(PowerClamp, UsesDeepestCstateByDefault) {
  ClampRig rig;
  rig.clamp.set_cur_state(20);
  EXPECT_EQ(rig.cpu.idle_injector().state(), rig.cpu.idle_injector().cstate_count() - 1);
}

TEST(PowerClamp, CstateSelectable) {
  ClampRig rig;
  rig.clamp.set_cstate_index(0);
  rig.clamp.set_cur_state(20);
  EXPECT_EQ(rig.cpu.idle_injector().state(), 0u);
}

TEST(PowerClamp, DestructorRemovesAttributes) {
  VirtualFs fs;
  hw::CpuDevice cpu;
  {
    PowerClampDevice clamp{fs, "/sys/class/thermal", 1, cpu};
    EXPECT_TRUE(fs.exists("/sys/class/thermal/cooling_device1/cur_state"));
  }
  EXPECT_FALSE(fs.exists("/sys/class/thermal/cooling_device1/cur_state"));
}

}  // namespace
}  // namespace thermctl::sysfs
