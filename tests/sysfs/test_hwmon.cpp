#include "sysfs/hwmon.hpp"

#include <gtest/gtest.h>

#include "hw/adt7467.hpp"
#include "hw/i2c.hpp"
#include "hw/thermal_sensor.hpp"
#include "sysfs/adt7467_driver.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {
namespace {

struct HwmonRig {
  VirtualFs fs;
  hw::I2cBus bus;
  hw::Adt7467 chip;
  Adt7467Driver driver{bus};
  double truth = 42.5;
  hw::ThermalSensor sensor{[this] { return Celsius{truth}; },
                           [] {
                             hw::SensorParams p;
                             p.noise_sigma_degc = 0.0;
                             return p;
                           }(),
                           Rng{1}};
  std::unique_ptr<HwmonDevice> hwmon;

  HwmonRig() {
    bus.attach(Adt7467Driver::kDefaultAddress, &chip);
    EXPECT_EQ(driver.probe(), DriverStatus::kOk);
    hwmon = std::make_unique<HwmonDevice>(fs, "/sys/class/hwmon", 0, sensor, driver);
  }
};

TEST(Hwmon, NameAttribute) {
  HwmonRig rig;
  EXPECT_EQ(rig.fs.read("/sys/class/hwmon/hwmon0/name").value(), "adt7467");
}

TEST(Hwmon, TempInputInMillidegrees) {
  HwmonRig rig;
  rig.sensor.sample();
  EXPECT_EQ(rig.fs.read("/sys/class/hwmon/hwmon0/temp1_input").value(), "42500");
}

TEST(Hwmon, ReadTemperatureHelper) {
  HwmonRig rig;
  rig.truth = 55.25;
  rig.sensor.sample();
  EXPECT_DOUBLE_EQ(rig.hwmon->read_temperature().value(), 55.25);
}

TEST(Hwmon, PwmWriteReachesChip) {
  HwmonRig rig;
  ASSERT_TRUE(rig.fs.write("/sys/class/hwmon/hwmon0/pwm1", "128"));
  EXPECT_NEAR(rig.chip.output_duty().percent(), 50.2, 0.5);
}

TEST(Hwmon, PwmReadback) {
  HwmonRig rig;
  rig.hwmon->write_pwm(DutyCycle{75.0});
  EXPECT_EQ(rig.fs.read("/sys/class/hwmon/hwmon0/pwm1").value(),
            std::to_string(static_cast<int>(hw::Adt7467::duty_to_reg(DutyCycle{75.0}))));
}

TEST(Hwmon, PwmWriteRejectsOutOfRange) {
  HwmonRig rig;
  EXPECT_FALSE(rig.fs.write("/sys/class/hwmon/hwmon0/pwm1", "300"));
  EXPECT_FALSE(rig.fs.write("/sys/class/hwmon/hwmon0/pwm1", "-1"));
  EXPECT_FALSE(rig.fs.write("/sys/class/hwmon/hwmon0/pwm1", "abc"));
}

TEST(Hwmon, FanInputReportsRpm) {
  HwmonRig rig;
  rig.chip.set_measured_rpm(Rpm{4300.0});
  const long rpm = rig.fs.read_long("/sys/class/hwmon/hwmon0/fan1_input").value();
  EXPECT_NEAR(static_cast<double>(rpm), 4300.0, 5.0);
}

TEST(Hwmon, FanInputZeroWhenStalled) {
  HwmonRig rig;
  rig.chip.set_measured_rpm(Rpm{0.0});
  EXPECT_EQ(rig.fs.read_long("/sys/class/hwmon/hwmon0/fan1_input").value(), 0);
}

TEST(Hwmon, PwmEnableSwitchesModes) {
  HwmonRig rig;
  ASSERT_TRUE(rig.fs.write("/sys/class/hwmon/hwmon0/pwm1_enable", "2"));
  EXPECT_FALSE(rig.chip.manual_mode());
  ASSERT_TRUE(rig.fs.write("/sys/class/hwmon/hwmon0/pwm1_enable", "1"));
  EXPECT_TRUE(rig.chip.manual_mode());
  EXPECT_FALSE(rig.fs.write("/sys/class/hwmon/hwmon0/pwm1_enable", "7"));
}

TEST(Hwmon, DestructorRemovesAttributes) {
  HwmonRig rig;
  rig.hwmon.reset();
  EXPECT_FALSE(rig.fs.exists("/sys/class/hwmon/hwmon0/temp1_input"));
  EXPECT_FALSE(rig.fs.exists("/sys/class/hwmon/hwmon0/pwm1"));
}

}  // namespace
}  // namespace thermctl::sysfs
