#include "sysfs/vfs.hpp"

#include <gtest/gtest.h>

namespace thermctl::sysfs {
namespace {

TEST(VirtualFs, ReadRegisteredAttribute) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/value", [] { return std::string{"42"}; });
  EXPECT_TRUE(fs.exists("/sys/test/value"));
  EXPECT_EQ(fs.read("/sys/test/value").value(), "42");
}

TEST(VirtualFs, MissingAttributeReadsNullopt) {
  VirtualFs fs;
  EXPECT_FALSE(fs.read("/sys/missing").has_value());
  EXPECT_FALSE(fs.exists("/sys/missing"));
}

TEST(VirtualFs, WriteDispatchesToHandler) {
  VirtualFs fs;
  std::string stored;
  fs.add_attribute(
      "/sys/test/knob", [&stored] { return stored; },
      [&stored](const std::string& v) {
        stored = v;
        return true;
      });
  EXPECT_TRUE(fs.write("/sys/test/knob", "hello"));
  EXPECT_EQ(fs.read("/sys/test/knob").value(), "hello");
}

TEST(VirtualFs, WriteToReadOnlyFails) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/ro", [] { return std::string{"x"}; });
  EXPECT_FALSE(fs.write("/sys/test/ro", "y"));
}

TEST(VirtualFs, ReadFromWriteOnlyFails) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/wo", nullptr, [](const std::string&) { return true; });
  EXPECT_FALSE(fs.read("/sys/test/wo").has_value());
  EXPECT_TRUE(fs.write("/sys/test/wo", "v"));
}

TEST(VirtualFs, HandlerRejectionPropagates) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/strict", [] { return std::string{}; },
                   [](const std::string& v) { return v == "ok"; });
  EXPECT_FALSE(fs.write("/sys/test/strict", "bad"));
  EXPECT_TRUE(fs.write("/sys/test/strict", "ok"));
}

TEST(VirtualFs, ReadLongParses) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/num", [] { return std::string{"2400000"}; });
  EXPECT_EQ(fs.read_long("/sys/test/num").value(), 2400000);
}

TEST(VirtualFs, ReadLongRejectsGarbage) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/str", [] { return std::string{"userspace"}; });
  EXPECT_FALSE(fs.read_long("/sys/test/str").has_value());
}

TEST(VirtualFs, WriteLongFormats) {
  VirtualFs fs;
  std::string stored;
  fs.add_attribute("/sys/test/n", nullptr, [&stored](const std::string& v) {
    stored = v;
    return true;
  });
  EXPECT_TRUE(fs.write_long("/sys/test/n", 1800000));
  EXPECT_EQ(stored, "1800000");
}

TEST(VirtualFs, ListReturnsSortedPrefixMatches) {
  VirtualFs fs;
  auto ro = [] { return std::string{}; };
  fs.add_attribute("/sys/class/hwmon/hwmon0/temp1_input", ro);
  fs.add_attribute("/sys/class/hwmon/hwmon0/pwm1", ro);
  fs.add_attribute("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq", ro);
  const auto listed = fs.list("/sys/class/hwmon/hwmon0");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "/sys/class/hwmon/hwmon0/pwm1");
  EXPECT_EQ(listed[1], "/sys/class/hwmon/hwmon0/temp1_input");
}

TEST(VirtualFs, RemoveAttribute) {
  VirtualFs fs;
  fs.add_attribute("/sys/x", [] { return std::string{}; });
  fs.remove_attribute("/sys/x");
  EXPECT_FALSE(fs.exists("/sys/x"));
}

TEST(VirtualFs, TypedHandleSeesStringPathWrites) {
  // Mixed access to one numeric attribute: the typed handle and the string
  // path are two views of the same handlers, so a write through either
  // surface must be visible to the next read through the other.
  VirtualFs fs;
  long stored = 1000;
  fs.add_attribute_long(
      "/sys/test/freq", [&stored] { return stored; },
      [&stored](long v) {
        stored = v;
        return true;
      });
  const VirtualFs::Handle h = fs.open("/sys/test/freq");
  ASSERT_TRUE(static_cast<bool>(h));
  EXPECT_EQ(fs.read_long(h).value(), 1000);

  EXPECT_TRUE(fs.write("/sys/test/freq", "2400"));  // string-path write
  EXPECT_EQ(fs.read_long(h).value(), 2400);         // typed handle is fresh

  EXPECT_TRUE(fs.write_long(h, 1800));              // typed-handle write
  EXPECT_EQ(fs.read("/sys/test/freq").value(), "1800");  // string path is fresh
}

TEST(VirtualFs, StaleHandleFailsClosedAfterRemove) {
  VirtualFs fs;
  long stored = 7;
  fs.add_attribute_long(
      "/sys/test/gone", [&stored] { return stored; },
      [&stored](long v) {
        stored = v;
        return true;
      });
  const VirtualFs::Handle h = fs.open("/sys/test/gone");
  ASSERT_EQ(fs.read_long(h).value(), 7);

  fs.remove_attribute("/sys/test/gone");
  // The handle must not dangle: every access through it fails closed.
  EXPECT_FALSE(fs.read_long(h).has_value());
  EXPECT_FALSE(fs.read(h).has_value());
  EXPECT_FALSE(fs.write_long(h, 9));
  EXPECT_FALSE(fs.write(h, "9"));
  EXPECT_EQ(stored, 7);  // the old handler was never invoked
}

TEST(VirtualFs, StaleHandleNeverReadsReRegisteredAttribute) {
  // Remove + re-register at the same path (device unpublish/republish): a
  // handle cached before the swap must not alias the new attribute — a
  // string-path write to the new one can then never be shadowed by a stale
  // cached long from the old one.
  VirtualFs fs;
  fs.add_attribute_long("/sys/test/temp", [] { return 41000L; });
  const VirtualFs::Handle stale = fs.open("/sys/test/temp");
  ASSERT_EQ(fs.read_long(stale).value(), 41000);

  fs.remove_attribute("/sys/test/temp");
  long fresh_value = 52000;
  fs.add_attribute_long(
      "/sys/test/temp", [&fresh_value] { return fresh_value; },
      [&fresh_value](long v) {
        fresh_value = v;
        return true;
      });

  EXPECT_FALSE(fs.read_long(stale).has_value());  // not the old value...
  EXPECT_TRUE(fs.write("/sys/test/temp", "53000"));
  EXPECT_FALSE(fs.read_long(stale).has_value());  // ...and never the new one
  const VirtualFs::Handle reopened = fs.open("/sys/test/temp");
  EXPECT_EQ(fs.read_long(reopened).value(), 53000);
}

TEST(VirtualFsDeath, RelativePathAborts) {
  VirtualFs fs;
  EXPECT_DEATH(fs.add_attribute("sys/x", [] { return std::string{}; }), "absolute");
}

TEST(VirtualFsDeath, DuplicateRegistrationAborts) {
  VirtualFs fs;
  fs.add_attribute("/sys/x", [] { return std::string{}; });
  EXPECT_DEATH(fs.add_attribute("/sys/x", [] { return std::string{}; }), "already");
}

}  // namespace
}  // namespace thermctl::sysfs
