#include "sysfs/vfs.hpp"

#include <gtest/gtest.h>

namespace thermctl::sysfs {
namespace {

TEST(VirtualFs, ReadRegisteredAttribute) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/value", [] { return std::string{"42"}; });
  EXPECT_TRUE(fs.exists("/sys/test/value"));
  EXPECT_EQ(fs.read("/sys/test/value").value(), "42");
}

TEST(VirtualFs, MissingAttributeReadsNullopt) {
  VirtualFs fs;
  EXPECT_FALSE(fs.read("/sys/missing").has_value());
  EXPECT_FALSE(fs.exists("/sys/missing"));
}

TEST(VirtualFs, WriteDispatchesToHandler) {
  VirtualFs fs;
  std::string stored;
  fs.add_attribute(
      "/sys/test/knob", [&stored] { return stored; },
      [&stored](const std::string& v) {
        stored = v;
        return true;
      });
  EXPECT_TRUE(fs.write("/sys/test/knob", "hello"));
  EXPECT_EQ(fs.read("/sys/test/knob").value(), "hello");
}

TEST(VirtualFs, WriteToReadOnlyFails) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/ro", [] { return std::string{"x"}; });
  EXPECT_FALSE(fs.write("/sys/test/ro", "y"));
}

TEST(VirtualFs, ReadFromWriteOnlyFails) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/wo", nullptr, [](const std::string&) { return true; });
  EXPECT_FALSE(fs.read("/sys/test/wo").has_value());
  EXPECT_TRUE(fs.write("/sys/test/wo", "v"));
}

TEST(VirtualFs, HandlerRejectionPropagates) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/strict", [] { return std::string{}; },
                   [](const std::string& v) { return v == "ok"; });
  EXPECT_FALSE(fs.write("/sys/test/strict", "bad"));
  EXPECT_TRUE(fs.write("/sys/test/strict", "ok"));
}

TEST(VirtualFs, ReadLongParses) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/num", [] { return std::string{"2400000"}; });
  EXPECT_EQ(fs.read_long("/sys/test/num").value(), 2400000);
}

TEST(VirtualFs, ReadLongRejectsGarbage) {
  VirtualFs fs;
  fs.add_attribute("/sys/test/str", [] { return std::string{"userspace"}; });
  EXPECT_FALSE(fs.read_long("/sys/test/str").has_value());
}

TEST(VirtualFs, WriteLongFormats) {
  VirtualFs fs;
  std::string stored;
  fs.add_attribute("/sys/test/n", nullptr, [&stored](const std::string& v) {
    stored = v;
    return true;
  });
  EXPECT_TRUE(fs.write_long("/sys/test/n", 1800000));
  EXPECT_EQ(stored, "1800000");
}

TEST(VirtualFs, ListReturnsSortedPrefixMatches) {
  VirtualFs fs;
  auto ro = [] { return std::string{}; };
  fs.add_attribute("/sys/class/hwmon/hwmon0/temp1_input", ro);
  fs.add_attribute("/sys/class/hwmon/hwmon0/pwm1", ro);
  fs.add_attribute("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq", ro);
  const auto listed = fs.list("/sys/class/hwmon/hwmon0");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "/sys/class/hwmon/hwmon0/pwm1");
  EXPECT_EQ(listed[1], "/sys/class/hwmon/hwmon0/temp1_input");
}

TEST(VirtualFs, RemoveAttribute) {
  VirtualFs fs;
  fs.add_attribute("/sys/x", [] { return std::string{}; });
  fs.remove_attribute("/sys/x");
  EXPECT_FALSE(fs.exists("/sys/x"));
}

TEST(VirtualFsDeath, RelativePathAborts) {
  VirtualFs fs;
  EXPECT_DEATH(fs.add_attribute("sys/x", [] { return std::string{}; }), "absolute");
}

TEST(VirtualFsDeath, DuplicateRegistrationAborts) {
  VirtualFs fs;
  fs.add_attribute("/sys/x", [] { return std::string{}; });
  EXPECT_DEATH(fs.add_attribute("/sys/x", [] { return std::string{}; }), "already");
}

}  // namespace
}  // namespace thermctl::sysfs
