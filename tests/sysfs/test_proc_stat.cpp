#include "sysfs/proc_stat.hpp"

#include <gtest/gtest.h>

namespace thermctl::sysfs {
namespace {

TEST(ProcStat, PublishesKernelFormat) {
  VirtualFs fs;
  std::uint64_t busy = 1234;
  std::uint64_t total = 5000;
  ProcStat ps{fs, [&busy] { return busy; }, [&total] { return total; }};
  const auto contents = fs.read("/proc/stat");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "cpu  1234 0 0 3766 0 0 0\n");
}

TEST(ProcStat, ParseRoundTrip) {
  VirtualFs fs;
  std::uint64_t busy = 777;
  std::uint64_t total = 1000;
  ProcStat ps{fs, [&busy] { return busy; }, [&total] { return total; }};
  const auto snap = ps.read(fs);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->busy, 777u);
  EXPECT_EQ(snap->total, 1000u);
}

TEST(ProcStat, ParseSumsBusyColumns) {
  const auto snap = ProcStat::parse("cpu  100 20 30 850 0 0 0\n");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->busy, 150u);
  EXPECT_EQ(snap->total, 1000u);
}

TEST(ProcStat, ParseRejectsGarbage) {
  EXPECT_FALSE(ProcStat::parse("intr 12345").has_value());
  EXPECT_FALSE(ProcStat::parse("cpu x y z").has_value());
  EXPECT_FALSE(ProcStat::parse("").has_value());
}

TEST(ProcStat, CountersAdvanceThroughAttribute) {
  VirtualFs fs;
  std::uint64_t busy = 0;
  std::uint64_t total = 0;
  ProcStat ps{fs, [&busy] { return busy; }, [&total] { return total; }};
  auto s1 = ps.read(fs);
  busy += 80;
  total += 100;
  auto s2 = ps.read(fs);
  ASSERT_TRUE(s1.has_value() && s2.has_value());
  EXPECT_EQ(s2->busy - s1->busy, 80u);
  EXPECT_EQ(s2->total - s1->total, 100u);
}

TEST(ProcStat, DestructorRemovesAttribute) {
  VirtualFs fs;
  {
    ProcStat ps{fs, [] { return std::uint64_t{0}; }, [] { return std::uint64_t{0}; }};
    EXPECT_TRUE(fs.exists("/proc/stat"));
  }
  EXPECT_FALSE(fs.exists("/proc/stat"));
}

}  // namespace
}  // namespace thermctl::sysfs
