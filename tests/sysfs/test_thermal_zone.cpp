#include "sysfs/thermal_zone.hpp"

#include <gtest/gtest.h>

namespace thermctl::sysfs {
namespace {

struct ZoneRig {
  VirtualFs fs;
  double truth = 45.0;
  ThermalZone zone{fs, "/sys/class/thermal", 0, "x86_pkg_temp",
                   [this] { return Celsius{truth}; }};
};

TEST(ThermalZone, TypeAndTempAttributes) {
  ZoneRig rig;
  EXPECT_EQ(rig.fs.read("/sys/class/thermal/thermal_zone0/type").value(), "x86_pkg_temp");
  EXPECT_EQ(rig.fs.read_long("/sys/class/thermal/thermal_zone0/temp").value(), 45000);
  rig.truth = 51.25;
  EXPECT_EQ(rig.fs.read_long("/sys/class/thermal/thermal_zone0/temp").value(), 51250);
}

TEST(ThermalZone, TripPointAttributes) {
  ZoneRig rig;
  rig.zone.add_trip({Celsius{51.0}, TripType::kPassive});
  rig.zone.add_trip({Celsius{90.0}, TripType::kCritical});
  EXPECT_EQ(rig.fs.read_long("/sys/class/thermal/thermal_zone0/trip_point_0_temp").value(),
            51000);
  EXPECT_EQ(rig.fs.read("/sys/class/thermal/thermal_zone0/trip_point_0_type").value(),
            "passive");
  EXPECT_EQ(rig.fs.read("/sys/class/thermal/thermal_zone0/trip_point_1_type").value(),
            "critical");
}

TEST(ThermalZone, BindsCoolingDevices) {
  ZoneRig rig;
  FanCoolingAdapter fan{[](DutyCycle) { return true; }, DutyCycle{10.0}, DutyCycle{100.0}};
  rig.zone.bind(&fan);
  ASSERT_EQ(rig.zone.bound_devices().size(), 1u);
  EXPECT_EQ(rig.zone.bound_devices()[0]->cooling_type(), "fan");
}

TEST(ThermalZone, DestructorRemovesEverything) {
  VirtualFs fs;
  {
    ThermalZone zone{fs, "/sys/class/thermal", 1, "t", [] { return Celsius{0.0}; }};
    zone.add_trip({Celsius{50.0}, TripType::kPassive});
    EXPECT_TRUE(fs.exists("/sys/class/thermal/thermal_zone1/trip_point_0_temp"));
  }
  EXPECT_FALSE(fs.exists("/sys/class/thermal/thermal_zone1/temp"));
  EXPECT_FALSE(fs.exists("/sys/class/thermal/thermal_zone1/trip_point_0_temp"));
}

TEST(FanCoolingAdapter, StateMapsLinearlyToDuty) {
  double last_duty = -1.0;
  FanCoolingAdapter fan{[&last_duty](DutyCycle d) {
                          last_duty = d.percent();
                          return true;
                        },
                        DutyCycle{10.0}, DutyCycle{100.0}, 9};
  EXPECT_EQ(fan.max_cooling_state(), 9);
  ASSERT_TRUE(fan.set_cooling_state(0));
  EXPECT_NEAR(last_duty, 10.0, 1e-9);
  ASSERT_TRUE(fan.set_cooling_state(9));
  EXPECT_NEAR(last_duty, 100.0, 1e-9);
  ASSERT_TRUE(fan.set_cooling_state(3));
  EXPECT_NEAR(last_duty, 40.0, 1e-9);
  EXPECT_EQ(fan.cooling_state(), 3);
}

TEST(FanCoolingAdapter, RejectsOutOfRange) {
  FanCoolingAdapter fan{[](DutyCycle) { return true; }, DutyCycle{10.0}, DutyCycle{100.0}, 5};
  EXPECT_FALSE(fan.set_cooling_state(-1));
  EXPECT_FALSE(fan.set_cooling_state(6));
}

TEST(FanCoolingAdapter, ActuatorFailureDoesNotAdvanceState) {
  FanCoolingAdapter fan{[](DutyCycle) { return false; }, DutyCycle{10.0}, DutyCycle{100.0}};
  EXPECT_FALSE(fan.set_cooling_state(2));
  EXPECT_EQ(fan.cooling_state(), 0);
}

TEST(DvfsCoolingAdapter, StateWalksLadder) {
  long last_khz = 0;
  DvfsCoolingAdapter dvfs{[&last_khz](long khz) {
                            last_khz = khz;
                            return true;
                          },
                          {2400000, 2200000, 2000000, 1800000, 1000000}};
  EXPECT_EQ(dvfs.max_cooling_state(), 4);
  ASSERT_TRUE(dvfs.set_cooling_state(0));
  EXPECT_EQ(last_khz, 2400000);
  ASSERT_TRUE(dvfs.set_cooling_state(4));
  EXPECT_EQ(last_khz, 1000000);
  EXPECT_EQ(dvfs.cooling_type(), "dvfs");
}

TEST(DvfsCoolingAdapterDeath, RejectsAscendingLadder) {
  EXPECT_DEATH(DvfsCoolingAdapter([](long) { return true; }, {1000000, 2400000}),
               "descending");
}

}  // namespace
}  // namespace thermctl::sysfs
