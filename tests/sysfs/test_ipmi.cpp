#include "sysfs/ipmi.hpp"

#include <gtest/gtest.h>

namespace thermctl::sysfs {
namespace {

TEST(Bmc, SensorReadingRoundTrip) {
  BmcEndpoint bmc;
  double temp = 47.5;
  const std::uint8_t num = bmc.add_sensor("CPU Temp", "degrees C", [&temp] { return temp; });
  SensorReading reading;
  ASSERT_EQ(bmc.get_sensor_reading(num, reading), IpmiCompletion::kOk);
  EXPECT_DOUBLE_EQ(reading.value, 47.5);
  EXPECT_EQ(reading.unit, "degrees C");
  temp = 51.0;
  ASSERT_EQ(bmc.get_sensor_reading(num, reading), IpmiCompletion::kOk);
  EXPECT_DOUBLE_EQ(reading.value, 51.0);
}

TEST(Bmc, InvalidSensorCompletionCode) {
  BmcEndpoint bmc;
  SensorReading reading;
  EXPECT_EQ(bmc.get_sensor_reading(99, reading), IpmiCompletion::kInvalidSensor);
}

TEST(Bmc, ListSensors) {
  BmcEndpoint bmc;
  bmc.add_sensor("CPU Temp", "degrees C", [] { return 0.0; });
  bmc.add_sensor("Fan1", "RPM", [] { return 0.0; });
  const auto sensors = bmc.list_sensors();
  ASSERT_EQ(sensors.size(), 2u);
  EXPECT_EQ(sensors[0].second, "CPU Temp");
  EXPECT_EQ(sensors[1].second, "Fan1");
}

TEST(Bmc, FanOverrideInvokesHandler) {
  BmcEndpoint bmc;
  std::optional<DutyCycle> seen;
  bool called = false;
  bmc.set_fan_override_handler([&](std::optional<DutyCycle> d) {
    seen = d;
    called = true;
  });
  ASSERT_EQ(bmc.set_fan_override(DutyCycle{80.0}), IpmiCompletion::kOk);
  EXPECT_TRUE(called);
  ASSERT_TRUE(seen.has_value());
  EXPECT_DOUBLE_EQ(seen->percent(), 80.0);
  ASSERT_EQ(bmc.set_fan_override(std::nullopt), IpmiCompletion::kOk);
  EXPECT_FALSE(seen.has_value());
}

TEST(Bmc, FanOverrideWithoutHandlerIsInvalidCommand) {
  BmcEndpoint bmc;
  EXPECT_EQ(bmc.set_fan_override(DutyCycle{50.0}), IpmiCompletion::kInvalidCommand);
}

TEST(Bmc, UnreachableEndpoint) {
  BmcEndpoint bmc;
  const std::uint8_t num = bmc.add_sensor("x", "u", [] { return 1.0; });
  bmc.set_reachable(false);
  SensorReading reading;
  EXPECT_EQ(bmc.get_sensor_reading(num, reading), IpmiCompletion::kDestinationUnavailable);
  bmc.set_reachable(true);
  EXPECT_EQ(bmc.get_sensor_reading(num, reading), IpmiCompletion::kOk);
}

TEST(IpmiNetwork, RoutesByNodeId) {
  BmcEndpoint a;
  BmcEndpoint b;
  a.add_sensor("t", "C", [] { return 1.0; });
  b.add_sensor("t", "C", [] { return 2.0; });
  IpmiNetwork net;
  net.attach(0, &a);
  net.attach(1, &b);
  SensorReading reading;
  ASSERT_EQ(net.get_sensor_reading(0, 1, reading), IpmiCompletion::kOk);
  EXPECT_DOUBLE_EQ(reading.value, 1.0);
  ASSERT_EQ(net.get_sensor_reading(1, 1, reading), IpmiCompletion::kOk);
  EXPECT_DOUBLE_EQ(reading.value, 2.0);
}

TEST(IpmiNetwork, UnknownNodeUnavailable) {
  IpmiNetwork net;
  SensorReading reading;
  EXPECT_EQ(net.get_sensor_reading(9, 1, reading), IpmiCompletion::kDestinationUnavailable);
  EXPECT_EQ(net.set_fan_override(9, DutyCycle{10.0}), IpmiCompletion::kDestinationUnavailable);
}

TEST(IpmiNetwork, NodeListing) {
  BmcEndpoint a;
  BmcEndpoint b;
  IpmiNetwork net;
  net.attach(3, &a);
  net.attach(1, &b);
  const auto nodes = net.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 1);
  EXPECT_EQ(nodes[1], 3);
}

}  // namespace
}  // namespace thermctl::sysfs
