#include "sysfs/powercap.hpp"

#include <gtest/gtest.h>

#include "hw/cpu_device.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {
namespace {

struct RaplRig {
  VirtualFs fs;
  hw::CpuDevice cpu;
  RaplDomain rapl{fs, "/sys/class/powercap", 0, cpu};
};

TEST(Rapl, NameAttribute) {
  RaplRig rig;
  EXPECT_EQ(rig.fs.read("/sys/class/powercap/intel-rapl:0/name").value(), "package-0");
}

TEST(Rapl, EnergyCounterAdvances) {
  RaplRig rig;
  EXPECT_EQ(rig.rapl.energy_uj(), 0u);
  rig.cpu.set_utilization(Utilization{1.0});
  rig.cpu.advance_counters(Seconds{2.0});
  const double joules = static_cast<double>(rig.rapl.energy_uj()) * 1e-6;
  EXPECT_NEAR(joules, rig.cpu.power().value() * 2.0, 0.1);
}

TEST(Rapl, AperfMperfExposed) {
  RaplRig rig;
  rig.cpu.set_utilization(Utilization{0.5});
  rig.cpu.advance_counters(Seconds{1.0});
  EXPECT_NEAR(static_cast<double>(rig.rapl.aperf()), 1200.0, 2.0);
  EXPECT_NEAR(static_cast<double>(rig.rapl.mperf()), 2400.0, 2.0);
}

TEST(Rapl, EnergyAttributeIsText) {
  RaplRig rig;
  rig.cpu.set_utilization(Utilization{1.0});
  rig.cpu.advance_counters(Seconds{1.0});
  const auto text = rig.fs.read("/sys/class/powercap/intel-rapl:0/energy_uj");
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(std::stoull(*text), rig.rapl.energy_uj());
}

TEST(Rapl, MonotoneNonDecreasing) {
  RaplRig rig;
  rig.cpu.set_utilization(Utilization{0.3});
  std::uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    rig.cpu.advance_counters(Seconds{0.05});
    const std::uint64_t e = rig.rapl.energy_uj();
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Rapl, DestructorRemovesAttributes) {
  VirtualFs fs;
  hw::CpuDevice cpu;
  {
    RaplDomain rapl{fs, "/sys/class/powercap", 1, cpu};
    EXPECT_TRUE(fs.exists("/sys/class/powercap/intel-rapl:1/energy_uj"));
  }
  EXPECT_FALSE(fs.exists("/sys/class/powercap/intel-rapl:1/energy_uj"));
}

}  // namespace
}  // namespace thermctl::sysfs
