#include "sysfs/cpufreq.hpp"

#include <gtest/gtest.h>

#include "hw/cpu_device.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {
namespace {

struct CpufreqRig {
  VirtualFs fs;
  hw::CpuDevice cpu;
  CpufreqPolicy policy{fs, "/sys/devices/system/cpu", 0, cpu};
};

TEST(Cpufreq, ExposesAvailableFrequenciesInKhz) {
  CpufreqRig rig;
  const auto contents =
      rig.fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "2400000 2200000 2000000 1800000 1000000");
}

TEST(Cpufreq, CurFreqTracksDevice) {
  CpufreqRig rig;
  EXPECT_EQ(rig.policy.cur_khz(), 2400000);
  rig.cpu.set_pstate(3);
  EXPECT_EQ(rig.policy.cur_khz(), 1800000);
}

TEST(Cpufreq, BoundsAttributes) {
  CpufreqRig rig;
  EXPECT_EQ(rig.policy.max_khz(), 2400000);
  EXPECT_EQ(rig.policy.min_khz(), 1000000);
}

TEST(Cpufreq, SetspeedWriteChangesFrequency) {
  CpufreqRig rig;
  EXPECT_TRUE(rig.fs.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "2000000"));
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.0);
}

TEST(Cpufreq, SetKhzHelper) {
  CpufreqRig rig;
  EXPECT_TRUE(rig.policy.set_khz(1000000));
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 1.0);
}

TEST(Cpufreq, SetspeedRejectsGarbage) {
  CpufreqRig rig;
  EXPECT_FALSE(rig.fs.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "fast"));
  EXPECT_FALSE(rig.fs.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "-5"));
}

TEST(Cpufreq, TransitionStatsExposed) {
  CpufreqRig rig;
  rig.policy.set_khz(1800000);
  rig.policy.set_khz(2400000);
  const auto trans = rig.fs.read_long("/sys/devices/system/cpu/cpu0/cpufreq/stats/total_trans");
  EXPECT_EQ(trans.value(), 2);
}

TEST(Cpufreq, AvailableGhzParses) {
  CpufreqRig rig;
  const auto ghz = rig.policy.available_ghz();
  ASSERT_EQ(ghz.size(), 5u);
  EXPECT_DOUBLE_EQ(ghz.front(), 2.4);
  EXPECT_DOUBLE_EQ(ghz.back(), 1.0);
}

TEST(Cpufreq, GovernorIsUserspace) {
  CpufreqRig rig;
  EXPECT_EQ(rig.fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor").value(),
            "userspace");
}

TEST(Cpufreq, DestructorRemovesAttributes) {
  VirtualFs fs;
  hw::CpuDevice cpu;
  {
    CpufreqPolicy policy{fs, "/sys/devices/system/cpu", 0, cpu};
    EXPECT_TRUE(fs.exists("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"));
  }
  EXPECT_FALSE(fs.exists("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"));
}

}  // namespace
}  // namespace thermctl::sysfs
