#include "sysfs/adt7467_driver.hpp"

#include <gtest/gtest.h>

#include "hw/adt7467.hpp"
#include "hw/i2c.hpp"

namespace thermctl::sysfs {
namespace {

struct DriverRig {
  hw::I2cBus bus;
  hw::Adt7467 chip;
  Adt7467Driver driver{bus};

  DriverRig() { bus.attach(Adt7467Driver::kDefaultAddress, &chip); }
};

TEST(Adt7467Driver, ProbeSucceedsAndEntersManualMode) {
  DriverRig rig;
  EXPECT_EQ(rig.driver.probe(), DriverStatus::kOk);
  EXPECT_TRUE(rig.driver.probed());
  EXPECT_TRUE(rig.chip.manual_mode());
}

TEST(Adt7467Driver, ProbeFailsWithNoDevice) {
  hw::I2cBus bus;
  Adt7467Driver driver{bus};
  EXPECT_EQ(driver.probe(), DriverStatus::kProbeFailed);
  EXPECT_FALSE(driver.probed());
}

TEST(Adt7467Driver, ProbeFailsWithWrongChip) {
  // A device that answers but with wrong IDs.
  class Imposter final : public hw::I2cSlave {
   public:
    std::optional<std::uint8_t> read_register(std::uint8_t) override { return 0x00; }
    bool write_register(std::uint8_t, std::uint8_t) override { return true; }
  };
  hw::I2cBus bus;
  Imposter imposter;
  bus.attach(Adt7467Driver::kDefaultAddress, &imposter);
  Adt7467Driver driver{bus};
  EXPECT_EQ(driver.probe(), DriverStatus::kProbeFailed);
}

TEST(Adt7467Driver, SetDutyRequiresProbe) {
  DriverRig rig;
  EXPECT_EQ(rig.driver.set_duty(DutyCycle{50.0}), DriverStatus::kProbeFailed);
}

TEST(Adt7467Driver, DutyRoundTrip) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  ASSERT_EQ(rig.driver.set_duty(DutyCycle{63.0}), DriverStatus::kOk);
  DutyCycle readback;
  ASSERT_EQ(rig.driver.read_duty(readback), DriverStatus::kOk);
  EXPECT_NEAR(readback.percent(), 63.0, 0.5);  // 8-bit register quantization
  EXPECT_NEAR(rig.chip.output_duty().percent(), 63.0, 0.5);
}

TEST(Adt7467Driver, TemperatureReadThroughBus) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  rig.chip.set_measured_temperature(Celsius{51.0});
  Celsius t;
  ASSERT_EQ(rig.driver.read_temperature(t), DriverStatus::kOk);
  EXPECT_DOUBLE_EQ(t.value(), 51.0);
}

TEST(Adt7467Driver, RpmReadAndStallDetection) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  rig.chip.set_measured_rpm(Rpm{2150.0});
  std::optional<Rpm> rpm;
  ASSERT_EQ(rig.driver.read_rpm(rpm), DriverStatus::kOk);
  ASSERT_TRUE(rpm.has_value());
  EXPECT_NEAR(rpm->value(), 2150.0, 3.0);

  rig.chip.set_measured_rpm(Rpm{0.0});
  ASSERT_EQ(rig.driver.read_rpm(rpm), DriverStatus::kOk);
  EXPECT_FALSE(rpm.has_value());
}

TEST(Adt7467Driver, AutoModeHandoff) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  ASSERT_EQ(rig.driver.set_automatic_mode(), DriverStatus::kOk);
  EXPECT_FALSE(rig.chip.manual_mode());
  ASSERT_EQ(rig.driver.set_manual_mode(), DriverStatus::kOk);
  EXPECT_TRUE(rig.chip.manual_mode());
}

TEST(Adt7467Driver, ConfigureAutoCurve) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  ASSERT_EQ(rig.driver.configure_auto_curve(DutyCycle{10.0}, Celsius{38.0}, CelsiusDelta{44.0}),
            DriverStatus::kOk);
  EXPECT_NEAR(rig.chip.auto_curve(Celsius{38.0}).percent(), 10.0, 0.5);
  EXPECT_NEAR(rig.chip.auto_curve(Celsius{82.0}).percent(), 100.0, 0.5);
}

TEST(Adt7467Driver, MaxDutyCapAppliesInAutoMode) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  ASSERT_EQ(rig.driver.set_max_duty(DutyCycle{25.0}), DriverStatus::kOk);
  ASSERT_EQ(rig.driver.set_automatic_mode(), DriverStatus::kOk);
  rig.chip.set_measured_temperature(Celsius{90.0});
  EXPECT_NEAR(rig.chip.output_duty().percent(), 25.0, 0.5);
}

TEST(Adt7467Driver, BusFaultSurfacesAsIoError) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  rig.bus.inject_bus_fault();
  EXPECT_EQ(rig.driver.set_duty(DutyCycle{10.0}), DriverStatus::kIoError);
  Celsius t;
  EXPECT_EQ(rig.driver.read_temperature(t), DriverStatus::kIoError);
}

TEST(Adt7467Driver, FaultedReadLeavesCallerStateUntouched) {
  // Protocol contract: an errored read must not consume `out`. A caller
  // that (wrongly) ignored the status would keep its previous value rather
  // than pick up garbage.
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  rig.chip.set_measured_temperature(Celsius{47.0});
  Celsius temp{0.0};
  ASSERT_EQ(rig.driver.read_temperature(temp), DriverStatus::kOk);
  ASSERT_DOUBLE_EQ(temp.value(), 47.0);
  DutyCycle duty{0.0};
  ASSERT_EQ(rig.driver.set_duty(DutyCycle{63.0}), DriverStatus::kOk);
  ASSERT_EQ(rig.driver.read_duty(duty), DriverStatus::kOk);

  rig.bus.inject_bus_fault();
  rig.chip.set_measured_temperature(Celsius{90.0});
  const double held_temp = temp.value();
  const double held_duty = duty.percent();
  EXPECT_EQ(rig.driver.read_temperature(temp), DriverStatus::kIoError);
  EXPECT_DOUBLE_EQ(temp.value(), held_temp);
  EXPECT_EQ(rig.driver.read_duty(duty), DriverStatus::kIoError);
  EXPECT_DOUBLE_EQ(duty.percent(), held_duty);
  // The driver itself is also unchanged: once the bus recovers it keeps
  // working without a re-probe.
  EXPECT_TRUE(rig.driver.probed());
  rig.bus.clear_bus_fault();
  EXPECT_EQ(rig.driver.read_temperature(temp), DriverStatus::kOk);
  EXPECT_DOUBLE_EQ(temp.value(), 90.0);
}

TEST(Adt7467Driver, TransientBusGlitchAbsorbedByRetry) {
  DriverRig rig;
  ASSERT_EQ(rig.driver.probe(), DriverStatus::kOk);
  rig.bus.inject_transient_bus_fault(2);
  // The default budget (3 attempts) rides out a 2-transfer glitch: the
  // caller never sees the fault.
  EXPECT_EQ(rig.driver.set_duty(DutyCycle{42.0}), DriverStatus::kOk);
  EXPECT_NEAR(rig.chip.output_duty().percent(), 42.0, 0.5);
  EXPECT_EQ(rig.driver.io_stats().retries, 2u);
  EXPECT_EQ(rig.driver.io_stats().bus_faults, 2u);
  EXPECT_EQ(rig.driver.io_stats().exhausted, 0u);
}

}  // namespace
}  // namespace thermctl::sysfs
