#include "verify/differential.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace thermctl::verify {
namespace {

core::ExperimentConfig quick_config() {
  core::ExperimentConfig cfg = core::paper_platform();
  cfg.name = "diff-smoke";
  cfg.nodes = 1;
  cfg.workload = core::WorkloadKind::kIdle;
  cfg.engine.horizon = Seconds{8.0};
  cfg.fan = core::FanPolicyKind::kDynamic;
  return cfg;
}

TEST(DiffResults, IdenticalRunsDiffClean) {
  const core::ExperimentConfig cfg = quick_config();
  const core::ExperimentResult a = core::run_experiment(cfg);
  const core::ExperimentResult b = core::run_experiment(cfg);
  const ResultDiff diff = diff_results(a, b);
  EXPECT_TRUE(diff.identical())
      << (diff.differences.empty() ? "" : diff.differences[0]);
  EXPECT_GT(diff.fields_compared, 100u);
}

TEST(DiffResults, OneUlpIsDetected) {
  const core::ExperimentConfig cfg = quick_config();
  const core::ExperimentResult a = core::run_experiment(cfg);
  core::ExperimentResult b = core::run_experiment(cfg);
  ASSERT_FALSE(b.run.nodes.empty());
  ASSERT_GT(b.run.nodes[0].die_temp.size(), 3u);
  b.run.nodes[0].die_temp[3] =
      std::nextafter(b.run.nodes[0].die_temp[3], std::numeric_limits<double>::infinity());
  const ResultDiff diff = diff_results(a, b);
  EXPECT_FALSE(diff.identical());
  EXPECT_EQ(diff.difference_count, 1u);
}

TEST(DiffResults, ExtraEventIsDetected) {
  const core::ExperimentConfig cfg = quick_config();
  const core::ExperimentResult a = core::run_experiment(cfg);
  core::ExperimentResult b = core::run_experiment(cfg);
  ASSERT_FALSE(b.fan_events.empty());
  b.fan_events[0].push_back(core::FanEvent{1.0, 10.0, 20.0, false});
  EXPECT_FALSE(diff_results(a, b).identical());
}

TEST(DiffResults, NanComparesEqualToItselfBitwise) {
  // Determinism diffing must treat NaN == NaN (same bits) as identical —
  // an IEEE == would report a spurious mismatch.
  core::ExperimentResult a;
  core::ExperimentResult b;
  a.run.times = {std::numeric_limits<double>::quiet_NaN()};
  b.run.times = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_TRUE(diff_results(a, b).identical());
  // ... but -0.0 vs +0.0 is a real bit difference.
  a.run.times = {0.0};
  b.run.times = {-0.0};
  EXPECT_FALSE(diff_results(a, b).identical());
}

TEST(OracleCorpus, DeterministicAndSized) {
  const std::vector<core::ExperimentConfig> a = make_oracle_corpus(99, 20);
  const std::vector<core::ExperimentConfig> b = make_oracle_corpus(99, 20);
  ASSERT_EQ(a.size(), 20u);
  ASSERT_EQ(b.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
    EXPECT_EQ(a[i].nodes, b[i].nodes) << i;
    EXPECT_EQ(a[i].pp.value, b[i].pp.value) << i;
    EXPECT_EQ(static_cast<int>(a[i].workload), static_cast<int>(b[i].workload)) << i;
  }
  // A different seed gives a different corpus.
  const std::vector<core::ExperimentConfig> c = make_oracle_corpus(100, 20);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].seed != c[i].seed;
  }
  EXPECT_TRUE(any_difference);
}

TEST(OracleCorpus, SpansWorkloadsAndDvfs) {
  const std::vector<core::ExperimentConfig> corpus = make_oracle_corpus(7, 24);
  int idle = 0;
  int burn = 0;
  int cycles = 0;
  int with_dvfs = 0;
  for (const core::ExperimentConfig& cfg : corpus) {
    idle += cfg.workload == core::WorkloadKind::kIdle ? 1 : 0;
    burn += cfg.workload == core::WorkloadKind::kCpuBurn ? 1 : 0;
    cycles += cfg.workload == core::WorkloadKind::kCpuBurnCycles ? 1 : 0;
    with_dvfs += cfg.dvfs == core::DvfsPolicyKind::kTdvfs ? 1 : 0;
  }
  EXPECT_GT(idle, 0);
  EXPECT_GT(burn, 0);
  EXPECT_GT(cycles, 0);
  EXPECT_GT(with_dvfs, 0);
  EXPECT_LT(with_dvfs, 24);
}

TEST(Oracle, SmallCorpusPassesAllPairs) {
  // The full >= 20-config corpus runs in CI (bench/verify_oracle); the unit
  // test keeps a fast representative slice.
  const std::vector<core::ExperimentConfig> corpus = make_oracle_corpus(20260806, 4);
  const OracleReport report = run_oracle(corpus);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.configs, 4u);
  EXPECT_EQ(report.pairs_checked, 32u);  // 8 pairings per config
}

TEST(Oracle, PassivePlanePairingHasTeeth) {
  // The plane-passive-vs-detached pairing is only meaningful if an *active*
  // plane would be caught: run the same config detached and with an actively
  // capping plane, and require a behavioural diff.
  core::ExperimentConfig cfg = quick_config();
  cfg.name = "plane-teeth";
  cfg.nodes = 2;
  cfg.workload = core::WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{10.0};
  cfg.engine.horizon = Seconds{20.0};
  const core::ExperimentResult detached = core::run_experiment(cfg);

  cfg.control_plane.enabled = true;
  cfg.control_plane.plane.passive = false;
  cfg.control_plane.plane.rack_budget_w = 60.0;  // well under two burning nodes
  const core::ExperimentResult capped = core::run_experiment(cfg);

  EXPECT_FALSE(diff_results(detached, capped).identical());
  EXPECT_GT(capped.plane_stats.caps_lowered, 0u);
  EXPECT_EQ(detached.plane_stats.rounds, 0u);
}

TEST(Oracle, BatchedPairingGreenOnIdenticalLayouts) {
  // The eighth pairing's promise, at unit scale: the ControlBank/FleetSweep
  // batched layout and the per-node-object reference layout are bit-identical
  // on the same config — including an active dynamic fan + tDVFS control path.
  core::ExperimentConfig cfg = quick_config();
  cfg.name = "batched-green";
  cfg.nodes = 3;
  cfg.workload = core::WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{10.0};
  cfg.engine.horizon = Seconds{16.0};
  cfg.dvfs = core::DvfsPolicyKind::kTdvfs;

  cfg.control_layout = core::ControlLayout::kBatched;
  const core::ExperimentResult batched = core::run_experiment(cfg);
  cfg.control_layout = core::ControlLayout::kPerNode;
  const core::ExperimentResult per_node = core::run_experiment(cfg);
  const ResultDiff diff = diff_results(batched, per_node);
  EXPECT_TRUE(diff.identical())
      << (diff.differences.empty() ? "" : diff.differences[0]);
}

TEST(Oracle, BatchedPairingRedOnControlScheduleDrift) {
  // ...and the pairing has teeth: a control-schedule perturbation of exactly
  // the kind a buggy batched layout would introduce — windows closing on a
  // different tick, here induced deliberately via the phase wheel — must show
  // up as a behavioural diff, not vanish in the comparison.
  core::ExperimentConfig cfg = quick_config();
  cfg.name = "batched-red";
  cfg.nodes = 3;
  cfg.workload = core::WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{10.0};
  cfg.engine.horizon = Seconds{16.0};
  cfg.control_layout = core::ControlLayout::kBatched;

  const core::ExperimentResult synchronized = core::run_experiment(cfg);
  cfg.control_phase_wheel = true;
  const core::ExperimentResult staggered = core::run_experiment(cfg);
  EXPECT_FALSE(diff_results(synchronized, staggered).identical());
}

TEST(OracleCorpus, IncludesWideRacksForShardedPairs) {
  // The sharded-vs-serial pairing needs node counts the 2-5 shard rotation
  // does not divide evenly; the corpus must provide racks wider than 3.
  const std::vector<core::ExperimentConfig> corpus = make_oracle_corpus(7, 24);
  int wide = 0;
  for (const core::ExperimentConfig& cfg : corpus) {
    wide += cfg.nodes > 3 ? 1 : 0;
  }
  EXPECT_GE(wide, 4);
  EXPECT_LT(wide, 24);
}

}  // namespace
}  // namespace thermctl::verify
