#include "verify/fuzz.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

namespace thermctl::verify {
namespace {

TEST(AdversarialStream, SameSeedSameStream) {
  AdversarialStream a{123, /*allow_nan=*/true};
  AdversarialStream b{123, /*allow_nan=*/true};
  for (int i = 0; i < 2000; ++i) {
    // Bit-pattern comparison so identical NaNs count as equal.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.next()), std::bit_cast<std::uint64_t>(b.next()))
        << "sample " << i;
  }
}

TEST(AdversarialStream, NanOnlyWhenAllowed) {
  AdversarialStream finite{55, /*allow_nan=*/false};
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(std::isfinite(finite.next())) << "sample " << i;
  }
  AdversarialStream hostile{55, /*allow_nan=*/true};
  bool saw_nan = false;
  for (int i = 0; i < 5000; ++i) {
    saw_nan = saw_nan || std::isnan(hostile.next());
  }
  EXPECT_TRUE(saw_nan);  // NaN-burst segments occur at ~1/6 of segments
}

TEST(AdversarialStream, CoversExtremes) {
  AdversarialStream stream{9, /*allow_nan=*/false};
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 5000; ++i) {
    const double v = stream.next();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Extreme-spike segments push far beyond any physical temperature.
  EXPECT_LT(lo, -1000.0);
  EXPECT_GT(hi, 1000.0);
}

TEST(Fuzz, UnifiedSurvivesSeeds) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const FuzzReport report = fuzz_unified(seed, 800);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(report.ticks, 800u);
  }
}

TEST(Fuzz, PredictiveSurvivesRaplWrap) {
  for (std::uint64_t seed : {1ULL, 7ULL}) {
    const FuzzReport report = fuzz_predictive(seed, 800);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(Fuzz, PidSurvivesResetStorm) {
  for (std::uint64_t seed : {1ULL, 11ULL}) {
    const FuzzReport report = fuzz_pid(seed, 800);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(Fuzz, StepWiseSurvivesNanBursts) {
  for (std::uint64_t seed : {1ULL, 13ULL}) {
    const FuzzReport report = fuzz_step_wise(seed, 800);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(Fuzz, SelectorAndArraySurviveHostileRounds) {
  const FuzzReport report = fuzz_selector(17, 2000);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Fuzz, AllMergesAndCarriesSeed) {
  const FuzzReport report = fuzz_all(29, 400);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.seed, 29u);
  EXPECT_GT(report.ticks, 400u * 4);  // every target contributed
}

TEST(Fuzz, ReportsAreDeterministic) {
  const FuzzReport a = fuzz_unified(31, 400);
  const FuzzReport b = fuzz_unified(31, 400);
  EXPECT_EQ(a.invariants.checks, b.invariants.checks);
  EXPECT_EQ(a.invariants.violation_count, b.invariants.violation_count);
}

}  // namespace
}  // namespace thermctl::verify
