// Regression reproductions for the bugs the verification harness flushed
// out. Each test encodes the exact scenario that failed before the fix, so
// a reintroduction trips immediately (and names the original symptom).
#include <gtest/gtest.h>

#include "../core/controller_rig.hpp"
#include "core/pid_fan.hpp"
#include "core/power_cap.hpp"
#include "core/predictive_fan.hpp"
#include "core/step_wise.hpp"
#include "sysfs/powercap.hpp"
#include "sysfs/thermal_zone.hpp"

namespace thermctl::verify {
namespace {

using core::testing::ControllerRig;

// ---- Bug 1: PidFanController::reset() left hardware state stale ----
//
// reset() cleared the PID terms but kept `initialized_`, the cached duty
// and the actuation counter. After a reset at steady state the next tick
// computed the same duty as the stale cache, the write-suppression shortcut
// swallowed the PWM write, and the chip was never re-asserted into manual
// mode — on real hardware, a controller restart after a chip power cycle
// would leave the fan on the chip's automatic curve while the controller
// believed it was in command.

TEST(PidResetBug, ReassertsAndWritesAfterReset) {
  ControllerRig rig;
  core::PidFanConfig cfg;
  cfg.setpoint = Celsius{50.0};
  core::PidFanController pid{*rig.hwmon, cfg};

  // Settle exactly at the setpoint: error 0 every tick, duty clamps to the
  // minimum and stops changing, so the write-suppression path is active.
  SimTime now = rig.run_flat(pid, 50.0, 8);
  const DutyCycle settled = pid.current_duty();

  pid.reset();
  EXPECT_EQ(pid.actuations(), 0u);  // counters cleared too

  // Same temperature, same computed duty as before the reset: the write
  // must happen anyway, because after reset the hardware is unknown.
  now.advance_us(250000);
  rig.tick(pid, 50.0, now);
  EXPECT_EQ(pid.actuations(), 1u);
  EXPECT_DOUBLE_EQ(pid.current_duty().percent(), settled.percent());
}

TEST(PidResetBug, ResetClearsController) {
  ControllerRig rig;
  core::PidFanController pid{*rig.hwmon, core::PidFanConfig{}};
  rig.run_flat(pid, 70.0, 12);  // hot: integrator and duty wind up
  EXPECT_GT(pid.actuations(), 0u);
  pid.reset();
  EXPECT_EQ(pid.integrator(), 0.0);
  EXPECT_EQ(pid.actuations(), 0u);
  EXPECT_DOUBLE_EQ(pid.current_duty().percent(), 0.0);
}

// ---- Bug 2: RAPL energy wraparound read as a power spike ----
//
// The kernel's energy_uj counter wraps at max_energy_range_uj (~65.5 kJ —
// minutes of runtime at server power). PredictiveFanController and
// PowerCapper computed round power as `energy - last`, which across the
// wrap underflows std::uint64_t to ~1.8e19 µJ: an astronomically large
// "power" that slammed the predictive fan's feed-forward term to the most
// effective mode and made the power capper throttle for nothing.

TEST(RaplWrapBug, DeltaHelperHandlesWrap) {
  using sysfs::RaplDomain;
  const std::uint64_t range = RaplDomain::kMaxEnergyRangeUj;
  // Monotone case unchanged.
  EXPECT_EQ(RaplDomain::energy_delta_uj(1000, 5000), 4000u);
  // Across the wrap: prev→range is (range − prev), range→0 is one count,
  // 0→cur is cur.
  EXPECT_EQ(RaplDomain::energy_delta_uj(range - 100, 400), 501u);
  EXPECT_EQ(RaplDomain::energy_delta_uj(range, 0), 1u);
  EXPECT_EQ(RaplDomain::energy_delta_uj(0, 0), 0u);
}

TEST(RaplWrapBug, DomainCounterActuallyWraps) {
  ControllerRig rig;
  sysfs::RaplDomain rapl{rig.fs, "/sys/class/powercap", 0, rig.cpu};
  rig.cpu.set_utilization(Utilization{0.8});
  rig.cpu.preset_counters(0, 0, sysfs::RaplDomain::kMaxEnergyRangeUj - 1'000'000ULL);
  EXPECT_GT(rapl.energy_uj(), sysfs::RaplDomain::kMaxEnergyRangeUj - 2'000'000ULL);
  for (int i = 0; i < 40; ++i) {
    rig.cpu.advance_counters(Seconds{0.25});
  }
  // 10 s at tens of watts is tens of joules: far past the 1 J headroom.
  EXPECT_LT(rapl.energy_uj(), sysfs::RaplDomain::kMaxEnergyRangeUj - 2'000'000ULL);
}

TEST(RaplWrapBug, PredictiveFanIgnoresWrap) {
  ControllerRig rig;
  sysfs::RaplDomain rapl{rig.fs, "/sys/class/powercap", 0, rig.cpu};
  rig.cpu.set_utilization(Utilization{0.7});
  rig.cpu.preset_counters(0, 0, sysfs::RaplDomain::kMaxEnergyRangeUj - 1'000'000ULL);

  core::PredictiveFanController fan{*rig.hwmon, rapl, core::PredictiveFanConfig{}};
  SimTime now;
  for (int i = 0; i < 80; ++i) {
    now.advance_us(250000);
    rig.cpu.advance_counters(Seconds{0.25});
    rig.tick(fan, 48.0, now);
  }
  // Flat temperature + constant load across the wrap: without the
  // wrap-correct delta the feed-forward term saw a ~1.8e19 µJ "round" and
  // retargeted to the most effective duty.
  EXPECT_TRUE(fan.events().empty());
  EXPECT_EQ(fan.feedforward_count(), 0u);
  EXPECT_EQ(fan.current_index(), 0u);
}

TEST(RaplWrapBug, PowerCapperIgnoresWrap) {
  ControllerRig rig;
  sysfs::RaplDomain rapl{rig.fs, "/sys/class/powercap", 0, rig.cpu};
  rig.cpu.set_utilization(Utilization{0.3});
  rig.cpu.preset_counters(0, 0, sysfs::RaplDomain::kMaxEnergyRangeUj - 1'000'000ULL);

  core::PowerCapConfig cfg;
  cfg.budget = Watts{120.0};  // comfortably above actual draw
  core::PowerCapper capper{rapl, *rig.cpufreq, cfg};
  SimTime now;
  const long nominal = rig.cpufreq->cur_khz();
  for (int i = 0; i < 20; ++i) {
    now.advance_us(1'000'000);
    for (int k = 0; k < 4; ++k) {
      rig.cpu.advance_counters(Seconds{0.25});
    }
    capper.on_interval(now);
    // Across the wrap the measured power must stay physical — the raw
    // subtraction produced ~1.8e13 W and a spurious throttle.
    EXPECT_LT(capper.last_power_w(), 500.0) << "interval " << i;
  }
  EXPECT_EQ(capper.overshoot_seconds(), 0.0);
  EXPECT_EQ(rig.cpufreq->cur_khz(), nominal);
}

// ---- Bug 3: StepWiseGovernor first-sample trend + missing hysteresis ----
//
// The governor initialized `last_temp_` to a −1e9 sentinel, so the first
// sample's trend computed as temp − (−1e9): a colossal "rising" edge. A
// zone already above its passive trip at governor start stepped every
// cooling device up on sample one, off a trend that never happened. The
// rewrite primes on the first sample (trend 0) and adds the kernel-style
// step-down hysteresis: above trip but cooling, devices unwind only after
// `cooling_consistency` consecutive falling samples.

struct ZoneRig {
  sysfs::VirtualFs fs;
  double truth = 45.0;
  sysfs::ThermalZone zone{fs, "/sys/class/thermal", 0, "repro",
                          [this] { return Celsius{truth}; }};
  double fan_duty = 10.0;
  sysfs::FanCoolingAdapter fan{[this](DutyCycle d) {
                                 fan_duty = d.percent();
                                 return true;
                               },
                               DutyCycle{10.0}, DutyCycle{100.0}, 9};

  ZoneRig() {
    zone.add_trip({Celsius{51.0}, sysfs::TripType::kPassive});
    zone.add_trip({Celsius{90.0}, sysfs::TripType::kCritical});
    zone.bind(&fan);
  }

  void feed(core::StepWiseGovernor& gov, std::initializer_list<double> temps) {
    SimTime now;
    for (double t : temps) {
      truth = t;
      now.advance_us(250000);
      gov.on_sample(now);
    }
  }
};

TEST(StepWiseFirstSampleBug, HotStartDoesNotStepOnSampleOne) {
  ZoneRig rig;
  core::StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {60.0});  // governor starts with the zone already hot
  // One sample carries no trend: stepping here acted on the sentinel edge.
  EXPECT_EQ(gov.steps_up(), 0u);
  EXPECT_EQ(rig.fan.cooling_state(), 0);
}

TEST(StepWiseFirstSampleBug, SecondSampleEstablishesRealTrend) {
  ZoneRig rig;
  core::StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {60.0, 61.0});  // now genuinely rising above trip
  EXPECT_EQ(gov.steps_up(), 1u);
}

TEST(StepWiseHysteresis, CoolingAboveTripUnwindsAfterConsistency) {
  ZoneRig rig;
  core::StepWiseConfig cfg;
  cfg.cooling_consistency = 3;
  core::StepWiseGovernor gov{rig.zone, cfg};
  rig.feed(gov, {52.0, 53.0, 54.0, 55.0});  // build response while rising
  const long peak = rig.fan.cooling_state();
  ASSERT_GE(peak, 2);

  // Two falling samples above the trip: not consistent yet, hold.
  rig.feed(gov, {54.5, 54.0});
  EXPECT_EQ(rig.fan.cooling_state(), peak);
  EXPECT_EQ(gov.steps_down(), 0u);

  // Third consecutive falling sample releases exactly one step.
  rig.feed(gov, {53.5});
  EXPECT_EQ(rig.fan.cooling_state(), peak - 1);
  EXPECT_EQ(gov.steps_down(), 1u);
}

TEST(StepWiseHysteresis, RisingSampleResetsTheStreak) {
  ZoneRig rig;
  core::StepWiseConfig cfg;
  cfg.cooling_consistency = 3;
  core::StepWiseGovernor gov{rig.zone, cfg};
  rig.feed(gov, {52.0, 53.0, 54.0, 55.0});
  const long peak = rig.fan.cooling_state();

  // falling, falling, RISING, falling, falling: never three in a row.
  rig.feed(gov, {54.5, 54.0, 54.6, 54.2, 53.8});
  EXPECT_GE(rig.fan.cooling_state(), peak);  // the rise may even step up
  EXPECT_EQ(gov.steps_down(), 0u);
}

}  // namespace
}  // namespace thermctl::verify
