#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include "verify/differential.hpp"

namespace thermctl::verify {
namespace {

std::vector<double> ascending(int count) {
  std::vector<double> modes;
  for (int i = 1; i <= count; ++i) {
    modes.push_back(static_cast<double>(i));
  }
  return modes;
}

TEST(ArrayInvariants, CleanFillPasses) {
  for (int pp : {1, 25, 50, 75, 100}) {
    core::ThermalControlArray arr{ascending(10), 32, core::PolicyParam{pp}};
    InvariantReport report;
    check_control_array(arr, report);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(ArrayInvariants, BrokenOrderingFlagged) {
  const std::vector<double> available = ascending(5);
  // Effectiveness rank goes 1, 3, 2: cells 2→3 descend.
  const std::vector<double> cells{1.0, 4.0, 3.0, 5.0};
  InvariantReport report;
  check_control_array_cells(cells, available, 3, core::PolicyParam{67}, report);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const InvariantViolation& v : report.violations) {
    found = found || v.kind == InvariantKind::kArrayOrder;
  }
  EXPECT_TRUE(found) << report.to_string();
}

TEST(ArrayInvariants, BrokenPinsFlagged) {
  const std::vector<double> available = ascending(5);
  // g1 is not the least effective mode.
  const std::vector<double> bad_front{2.0, 3.0, 5.0, 5.0};
  InvariantReport report;
  check_control_array_cells(bad_front, available, 3, core::PolicyParam{67}, report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kArrayPins);

  // gN is not the most effective mode.
  const std::vector<double> bad_back{1.0, 3.0, 4.0, 4.0};
  InvariantReport report2;
  check_control_array_cells(bad_back, available, 3, core::PolicyParam{67}, report2);
  EXPECT_FALSE(report2.ok());
}

TEST(ArrayInvariants, WrongNpFlagged) {
  const std::vector<double> available = ascending(5);
  const std::vector<double> cells{1.0, 3.0, 5.0, 5.0};
  InvariantReport report;
  // Eq. (1) for Pp=1, N=4 gives n_p=1; claiming 3 must be flagged.
  check_control_array_cells(cells, available, 3, core::PolicyParam{1}, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kArrayFill);
}

TEST(ArrayInvariants, NonPhysicalModeFlagged) {
  const std::vector<double> available = ascending(5);
  const std::vector<double> cells{1.0, 3.5, 5.0, 5.0};  // 3.5 is not a mode
  InvariantReport report;
  check_control_array_cells(cells, available, 3, core::PolicyParam{67}, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kArrayFill);
}

TEST(SelectorInvariants, LiveDecisionsPass) {
  core::ModeSelector selector{core::ModeSelectorConfig{}, 16};
  core::WindowRound round;
  round.level1_delta = CelsiusDelta{3.0};
  round.level2_delta = CelsiusDelta{0.2};
  round.level1_average = Celsius{50.0};
  round.level2_valid = true;
  const core::ModeDecision d = selector.decide(4, round);
  InvariantReport report;
  check_selector_decision(selector, d, 4, round, 16, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SelectorInvariants, OutOfRangeTargetFlagged) {
  core::ModeSelector selector{core::ModeSelectorConfig{}, 16};
  core::WindowRound round;
  core::ModeDecision forged;
  forged.target = 16;  // == N, one past the last legal index
  forged.changed = true;
  InvariantReport report;
  check_selector_decision(selector, forged, 4, round, 16, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kSelectorRange);
}

TEST(SelectorInvariants, IllegalLevel2AttributionFlagged) {
  core::ModeSelector selector{core::ModeSelectorConfig{}, 16};
  core::WindowRound round;
  // Level-1 delta large enough to move the index on its own: claiming the
  // decision came from level two is a lie.
  round.level1_delta = CelsiusDelta{10.0};
  round.level2_delta = CelsiusDelta{10.0};
  round.level2_valid = true;
  core::ModeDecision forged = selector.decide(2, round);
  forged.used_level2 = true;
  InvariantReport report;
  check_selector_decision(selector, forged, 2, round, 16, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kSelectorAttribution);
}

core::ExperimentConfig small_experiment() {
  core::ExperimentConfig cfg = core::paper_platform();
  cfg.name = "invariant-smoke";
  cfg.nodes = 2;
  cfg.workload = core::WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{10.0};
  cfg.engine.horizon = Seconds{15.0};
  cfg.fan = core::FanPolicyKind::kDynamic;
  cfg.dvfs = core::DvfsPolicyKind::kTdvfs;
  cfg.tdvfs.threshold = Celsius{46.0};  // low enough to see triggers
  return cfg;
}

TEST(RunInvariants, ArmedExperimentIsCleanAndActuallyChecks) {
  core::ExperimentConfig cfg = small_experiment();
  const std::shared_ptr<InvariantLog> log = arm_invariants(cfg);
  const core::ExperimentResult result = core::run_experiment(cfg);
  const InvariantReport report = log->snapshot();
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The checker must have run: nodes × samples × several invariants each.
  EXPECT_GT(report.checks, 100u);
  EXPECT_FALSE(result.run.times.empty());
}

TEST(RunInvariants, ArmingIsBehaviourallyInert) {
  core::ExperimentConfig plain = small_experiment();
  core::ExperimentConfig armed = small_experiment();
  const std::shared_ptr<InvariantLog> log = arm_invariants(armed);
  const core::ExperimentResult a = core::run_experiment(plain);
  const core::ExperimentResult b = core::run_experiment(armed);
  const ResultDiff diff = diff_results(a, b);
  EXPECT_TRUE(diff.identical()) << diff.difference_count << " diffs; first: "
                                << (diff.differences.empty() ? "" : diff.differences[0]);
  EXPECT_TRUE(log->ok());
}

TEST(RunInvariants, SameLogAccumulatesAcrossRuns) {
  core::ExperimentConfig cfg = small_experiment();
  const std::shared_ptr<InvariantLog> log = arm_invariants(cfg);
  (void)core::run_experiment(cfg);
  const std::uint64_t after_one = log->snapshot().checks;
  (void)core::run_experiment(cfg);
  const std::uint64_t after_two = log->snapshot().checks;
  EXPECT_GT(after_one, 0u);
  EXPECT_EQ(after_two, after_one * 2);  // fresh checker per run, same work
}

}  // namespace
}  // namespace thermctl::verify
