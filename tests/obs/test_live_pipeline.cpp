// Unit tests for the live telemetry pipeline: the streaming spiller, fleet
// rollups, the alert watchdog, and OpenMetrics exposition.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/openmetrics.hpp"
#include "obs/rollup.hpp"
#include "obs/spill.hpp"
#include "obs/trace_io.hpp"

namespace thermctl::obs {
namespace {

TraceEvent event_at(double t, std::int64_t tag = 0) {
  return TraceEvent{.t_s = t,
                    .type = TraceEventType::kWindowRound,
                    .subsystem = TraceSubsystem::kFan,
                    .i0 = tag};
}

// ---- spiller ----

TEST(Spill, DrainsIncrementallyWithoutLoss) {
  RunTrace trace{2, 8};
  MemorySpillSink sink;
  TraceSpiller spiller{trace, sink, SpillConfig{}};

  trace.ring(0).emit(event_at(0.1));
  trace.ring(1).emit(event_at(0.2));
  spiller.drain(1.0);
  EXPECT_EQ(sink.events().size(), 2u);

  trace.ring(0).emit(event_at(1.1));
  spiller.drain(2.0);
  spiller.finish();

  EXPECT_TRUE(sink.finalized());
  EXPECT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(spiller.stats().events_spilled, 3u);
  EXPECT_EQ(spiller.stats().events_lost, 0u);
  EXPECT_EQ(spiller.stats().drains, 2u);
  // Merge order: (time, node).
  EXPECT_DOUBLE_EQ(sink.events()[0].t_s, 0.1);
  EXPECT_DOUBLE_EQ(sink.events()[1].t_s, 0.2);
  EXPECT_DOUBLE_EQ(sink.events()[2].t_s, 1.1);
}

TEST(Spill, SavesEventsTheRingWouldDrop) {
  // Ring capacity 4, 12 events emitted with a drain between batches: the
  // ring reports drops (it wrapped) but the spiller saw everything in time.
  RunTrace trace{1, 4};
  MemorySpillSink sink;
  TraceSpiller spiller{trace, sink, SpillConfig{}};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 4; ++i) {
      trace.ring(0).emit(event_at(batch + 0.1 * i, batch * 4 + i));
    }
    spiller.drain(batch + 1.0);
  }
  spiller.finish();
  EXPECT_GT(trace.total_dropped(), 0u);
  EXPECT_EQ(spiller.stats().events_lost, 0u);
  EXPECT_EQ(sink.events().size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(sink.events()[static_cast<std::size_t>(i)].i0, i);
  }
}

TEST(Spill, CountsLapLossPerNode) {
  // 10 events into a 4-slot ring with no drain in between: the oldest 6 are
  // gone before the spiller ever runs.
  RunTrace trace{2, 4};
  MemorySpillSink sink;
  TraceSpiller spiller{trace, sink, SpillConfig{}};
  for (int i = 0; i < 10; ++i) {
    trace.ring(1).emit(event_at(0.1 * i, i));
  }
  spiller.drain(1.0);
  spiller.finish();
  EXPECT_EQ(spiller.stats().events_lost, 6u);
  ASSERT_EQ(spiller.stats().lost_by_node.size(), 2u);
  EXPECT_EQ(spiller.stats().lost_by_node[0], 0u);
  EXPECT_EQ(spiller.stats().lost_by_node[1], 6u);
  // What survived is the newest 4, in order.
  ASSERT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.events()[0].i0, 6);
  EXPECT_EQ(sink.events()[3].i0, 9);
}

TEST(Spill, BudgetDefersButNeverLoses) {
  RunTrace trace{4, 16};
  MemorySpillSink sink;
  SpillConfig cfg;
  cfg.max_events_per_drain = 3;
  TraceSpiller spiller{trace, sink, cfg};
  for (std::size_t n = 0; n < 4; ++n) {
    for (int i = 0; i < 4; ++i) {
      trace.ring(n).emit(event_at(0.1 * i, static_cast<std::int64_t>(n) * 4 + i));
    }
  }
  // 16 events pending, 3 per drain: needs 6 budgeted drains.
  for (int d = 0; d < 6; ++d) {
    spiller.drain(d + 1.0);
  }
  spiller.finish();
  EXPECT_EQ(spiller.stats().events_spilled, 16u);
  EXPECT_EQ(spiller.stats().events_lost, 0u);
  EXPECT_GT(spiller.stats().deferred_drains, 0u);
  EXPECT_EQ(sink.events().size(), 16u);
}

TEST(Spill, FinishIsIdempotentAndFinalizesHeader) {
  RunTrace trace{1, 8};
  MemorySpillSink sink;
  TraceSpiller spiller{trace, sink, SpillConfig{}};
  trace.ring(0).emit(event_at(0.5));
  spiller.finish();
  spiller.finish();
  EXPECT_TRUE(sink.finalized());
  EXPECT_EQ(sink.node_count(), 1u);
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(Spill, FileSinkWritesReadableThermtrace) {
  const std::string path = testing::TempDir() + "spill_roundtrip.thermtrace";
  RunTrace trace{2, 8};
  {
    FileSpillSink sink{path};
    TraceSpiller spiller{trace, sink, SpillConfig{}};
    trace.ring(0).emit(event_at(0.25, 7));
    trace.ring(1).emit(event_at(0.5, 8));
    spiller.drain(1.0);
    trace.ring(0).emit(event_at(1.5, 9));
    spiller.finish();
  }
  const TraceFile file = read_trace_file(path);
  EXPECT_EQ(file.node_count, 2u);
  ASSERT_EQ(file.events.size(), 3u);
  EXPECT_EQ(file.events[0].i0, 7);
  EXPECT_EQ(file.events[2].i0, 9);
  std::remove(path.c_str());
}

// ---- rollup ----

TEST(Rollup, AggregatesPerRackAndFleet) {
  RollupConfig cfg;
  cfg.enabled = true;
  cfg.interval_s = 1.0;
  cfg.nodes_per_rack = 2;
  cfg.violation_temp_c = 60.0;
  FleetRollup rollup{4, cfg};
  EXPECT_EQ(rollup.rack_count(), 2u);
  EXPECT_EQ(rollup.rack_of(0), 0u);
  EXPECT_EQ(rollup.rack_of(3), 1u);

  rollup.begin(5.0);
  rollup.observe(0, 50.0, 100.0, false, false);
  rollup.observe(1, 70.0, 110.0, true, false);
  rollup.observe(2, 40.0, 90.0, false, true);
  rollup.observe(3, 44.0, 95.0, false, false);
  rollup.commit(3, 12);

  const RollupSample& rack0 = rollup.rack_series(0).back();
  EXPECT_DOUBLE_EQ(rack0.max_temp_c, 70.0);
  EXPECT_DOUBLE_EQ(rack0.avg_temp_c, 60.0);
  EXPECT_DOUBLE_EQ(rack0.power_w, 210.0);
  EXPECT_EQ(rack0.capped_nodes, 1u);
  EXPECT_DOUBLE_EQ(rack0.violation_node_s, 1.0);  // node 1 over 60 C for 1 s

  const RollupSample& fleet = rollup.fleet_series().back();
  EXPECT_DOUBLE_EQ(fleet.t_s, 5.0);
  EXPECT_DOUBLE_EQ(fleet.max_temp_c, 70.0);
  EXPECT_DOUBLE_EQ(fleet.avg_temp_c, 51.0);
  EXPECT_DOUBLE_EQ(fleet.power_w, 395.0);
  EXPECT_EQ(fleet.capped_nodes, 1u);
  EXPECT_EQ(fleet.autonomous_nodes, 1u);
  EXPECT_EQ(fleet.plane_failsafe_entries, 3u);
  EXPECT_EQ(fleet.sensor_rejected, 12u);
  EXPECT_EQ(rollup.samples_recorded(), 3u);  // 2 racks + fleet
}

TEST(Rollup, OutputIsORacksNotONodes) {
  RollupConfig cfg;
  cfg.enabled = true;
  cfg.nodes_per_rack = 100;
  FleetRollup rollup{1000, cfg};
  for (int interval = 0; interval < 5; ++interval) {
    rollup.begin(interval * 1.0);
    for (std::size_t n = 0; n < 1000; ++n) {
      rollup.observe(n, 45.0, 80.0, false, false);
    }
    rollup.commit(0, 0);
  }
  // 10 racks + fleet, 5 intervals — node count never appears.
  EXPECT_EQ(rollup.samples_recorded(), 55u);
}

// ---- watchdog ----

FleetRollup one_rack_rollup() {
  RollupConfig cfg;
  cfg.enabled = true;
  cfg.interval_s = 1.0;
  return FleetRollup{2, cfg};
}

void feed(FleetRollup& rollup, double t, double temp_c, double power_w,
          std::uint64_t failsafes = 0) {
  rollup.begin(t);
  rollup.observe(0, temp_c, power_w / 2.0, false, false);
  rollup.observe(1, temp_c - 5.0, power_w / 2.0, false, false);
  rollup.commit(failsafes, 0);
}

TEST(Alerts, FiresAfterHoldTimeAndClears) {
  FleetRollup rollup = one_rack_rollup();
  AlertWatchdog dog{{{"hot", AlertKind::kMaxTemp, 60.0, 2.0, false}}, rollup.rack_count()};

  feed(rollup, 0.0, 50.0, 100.0);
  dog.evaluate(0.0, rollup);
  EXPECT_TRUE(dog.events().empty());

  feed(rollup, 1.0, 65.0, 100.0);  // over, hold starts
  dog.evaluate(1.0, rollup);
  EXPECT_TRUE(dog.events().empty());

  feed(rollup, 2.0, 66.0, 100.0);  // held 1 s < 2 s
  dog.evaluate(2.0, rollup);
  EXPECT_TRUE(dog.events().empty());

  feed(rollup, 3.0, 70.0, 100.0);  // held 2 s -> fire
  dog.evaluate(3.0, rollup);
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_DOUBLE_EQ(dog.events()[0].fired_at_s, 3.0);
  EXPECT_DOUBLE_EQ(dog.events()[0].peak, 70.0);
  EXPECT_EQ(dog.events()[0].rack, -1);
  EXPECT_EQ(dog.firing_count(), 1u);
  EXPECT_TRUE(dog.rule_firing(0));

  feed(rollup, 4.0, 50.0, 100.0);  // back under -> clear
  dog.evaluate(4.0, rollup);
  EXPECT_DOUBLE_EQ(dog.events()[0].cleared_at_s, 4.0);
  EXPECT_EQ(dog.firing_count(), 0u);
}

TEST(Alerts, DipResetsHoldWindow) {
  FleetRollup rollup = one_rack_rollup();
  AlertWatchdog dog{{{"hot", AlertKind::kMaxTemp, 60.0, 2.0, false}}, rollup.rack_count()};
  const double temps[] = {65.0, 66.0, 50.0, 65.0, 66.0, 67.0};
  for (int i = 0; i < 6; ++i) {
    feed(rollup, i * 1.0, temps[i], 100.0);
    dog.evaluate(i * 1.0, rollup);
  }
  // The dip at t=2 restarts the window: fire lands at t=5, not t=2.
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_DOUBLE_EQ(dog.events()[0].fired_at_s, 5.0);
}

TEST(Alerts, PerRackScopesFireIndependently) {
  RollupConfig cfg;
  cfg.enabled = true;
  cfg.nodes_per_rack = 1;
  FleetRollup rollup{2, cfg};
  AlertWatchdog dog{{{"rack-hot", AlertKind::kMaxTemp, 60.0, 0.0, true}}, rollup.rack_count()};

  rollup.begin(1.0);
  rollup.observe(0, 70.0, 50.0, false, false);  // rack 0 hot
  rollup.observe(1, 40.0, 50.0, false, false);  // rack 1 fine
  rollup.commit(0, 0);
  dog.evaluate(1.0, rollup);
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_EQ(dog.events()[0].rack, 0);
  EXPECT_EQ(dog.firing_count(), 1u);
}

TEST(Alerts, RateRuleUsesCounterDeltas) {
  FleetRollup rollup = one_rack_rollup();
  // 120/min = 2/s; the first sample has no delta so never fires.
  AlertWatchdog dog{{{"storm", AlertKind::kFailsafeRate, 120.0, 0.0, false}},
                    rollup.rack_count()};
  feed(rollup, 0.0, 50.0, 100.0, 0);
  dog.evaluate(0.0, rollup);
  feed(rollup, 1.0, 50.0, 100.0, 1);  // 1/s = 60/min, under
  dog.evaluate(1.0, rollup);
  EXPECT_TRUE(dog.events().empty());
  feed(rollup, 2.0, 50.0, 100.0, 4);  // 3/s = 180/min, over
  dog.evaluate(2.0, rollup);
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_DOUBLE_EQ(dog.events()[0].peak, 180.0);
}

TEST(Alerts, FiresLandOnTheTraceRing) {
  TraceRing ring{0, 16};
  FleetRollup rollup = one_rack_rollup();
  AlertWatchdog dog{{{"hot", AlertKind::kMaxTemp, 60.0, 0.0, false}}, rollup.rack_count()};
  dog.set_trace(&ring);
  feed(rollup, 1.0, 70.0, 100.0);
  dog.evaluate(1.0, rollup);
  feed(rollup, 2.0, 40.0, 100.0);
  dog.evaluate(2.0, rollup);

  const std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kAlertFire);
  EXPECT_EQ(events[0].subsystem, TraceSubsystem::kAlert);
  EXPECT_EQ(events[0].i0, 0);   // rule index
  EXPECT_EQ(events[0].i1, -1);  // fleet scope
  EXPECT_DOUBLE_EQ(events[0].a, 70.0);
  EXPECT_DOUBLE_EQ(events[0].b, 60.0);
  EXPECT_EQ(events[1].type, TraceEventType::kAlertClear);
}

// ---- OpenMetrics ----

TEST(OpenMetrics, SanitizesNames) {
  EXPECT_EQ(openmetrics_name("fan.retargets"), "thermctl_fan_retargets");
  EXPECT_EQ(openmetrics_name("node.die_temp_c"), "thermctl_node_die_temp_c");
  EXPECT_EQ(openmetrics_name("weird-name!"), "thermctl_weird_name_");
}

TEST(OpenMetrics, RendersSnapshotRollupAlertsAndSpill) {
  MetricsSnapshot snap;
  snap.counters["fan.retargets"] = 42;
  snap.gauges["engine.sim_rate"] = 3.5;
  MetricsSnapshot::HistogramValue h;
  h.bounds = {10.0, 20.0};
  h.counts = {3, 4};
  h.total = 9;  // 2 overflow beyond the last bound
  h.sum = 123.0;
  snap.histograms["fan.duty_pct"] = h;

  RollupConfig cfg;
  cfg.enabled = true;
  cfg.nodes_per_rack = 1;
  FleetRollup rollup{2, cfg};
  rollup.begin(7.5);
  rollup.observe(0, 55.0, 101.0, true, false);
  rollup.observe(1, 45.0, 99.0, false, true);
  rollup.commit(2, 5);

  AlertWatchdog dog{{{"hot", AlertKind::kMaxTemp, 50.0, 0.0, false}}, rollup.rack_count()};
  dog.evaluate(7.5, rollup);

  SpillStats spill;
  spill.drains = 4;
  spill.events_spilled = 100;

  const std::string text = render_openmetrics(snap, &rollup, &dog, &spill, 7.5);

  EXPECT_NE(text.find("# TYPE thermctl_sim_time_seconds gauge"), std::string::npos);
  EXPECT_NE(text.find("thermctl_sim_time_seconds 7.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE thermctl_fan_retargets counter"), std::string::npos);
  EXPECT_NE(text.find("thermctl_fan_retargets_total 42"), std::string::npos);
  // Cumulative buckets: 3, 7, then +Inf at total.
  EXPECT_NE(text.find("thermctl_fan_duty_pct_bucket{le=\"10\"} 3"), std::string::npos);
  EXPECT_NE(text.find("thermctl_fan_duty_pct_bucket{le=\"20\"} 7"), std::string::npos);
  EXPECT_NE(text.find("thermctl_fan_duty_pct_bucket{le=\"+Inf\"} 9"), std::string::npos);
  EXPECT_NE(text.find("thermctl_fan_duty_pct_count 9"), std::string::npos);
  EXPECT_NE(text.find("thermctl_fleet_max_temp_celsius 55"), std::string::npos);
  EXPECT_NE(text.find("thermctl_fleet_power_watts 200"), std::string::npos);
  EXPECT_NE(text.find("thermctl_rack_power_watts{rack=\"1\"} 99"), std::string::npos);
  EXPECT_NE(text.find("thermctl_alerts_firing 1"), std::string::npos);
  EXPECT_NE(text.find("thermctl_alert_firing{rule=\"hot\"} 1"), std::string::npos);
  EXPECT_NE(text.find("thermctl_spill_events_total 100"), std::string::npos);
  // Terminal framing.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, NullSectionsStillWellFormed) {
  const std::string text = render_openmetrics(MetricsSnapshot{}, nullptr, nullptr, nullptr, 0.0);
  EXPECT_NE(text.find("thermctl_sim_time_seconds 0"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(Spill, OrderRestoredAcrossBudgetedDrains) {
  // Budget 1 forces node 1's older event into a later drain batch than
  // node 0's newer one: the appended stream is out of (time, node) order
  // and only the finalize-time sort restores it (the bug this regresses:
  // per-batch stable sort alone left the stream globally unsorted).
  RunTrace trace{2, 8};
  MemorySpillSink sink;
  SpillConfig cfg;
  cfg.max_events_per_drain = 1;
  TraceSpiller spiller{trace, sink, cfg};
  trace.ring(0).emit(event_at(0.5, 1));
  trace.ring(1).emit(event_at(0.2, 2));
  spiller.drain(1.0);
  spiller.drain(1.0);
  trace.ring(0).emit(event_at(1.5, 3));
  trace.ring(1).emit(event_at(1.2, 4));
  spiller.drain(2.0);
  spiller.drain(2.0);
  spiller.finish();

  ASSERT_EQ(sink.events().size(), 4u);
  EXPECT_GT(spiller.stats().deferred_drains, 0u);
  for (std::size_t i = 1; i < sink.events().size(); ++i) {
    const TraceEvent& prev = sink.events()[i - 1];
    const TraceEvent& cur = sink.events()[i];
    EXPECT_TRUE(prev.t_s < cur.t_s || (prev.t_s == cur.t_s && prev.node <= cur.node))
        << "unsorted at index " << i;
  }
  EXPECT_EQ(sink.events()[0].i0, 2);  // t=0.2 first despite later drain
}

TEST(Spill, FileReaderRestoresOrderAcrossBudgetedDrains) {
  const std::string path = testing::TempDir() + "spill_order.thermtrace";
  RunTrace trace{2, 8};
  {
    FileSpillSink sink{path};
    SpillConfig cfg;
    cfg.max_events_per_drain = 1;
    TraceSpiller spiller{trace, sink, cfg};
    trace.ring(0).emit(event_at(0.5, 1));
    trace.ring(1).emit(event_at(0.2, 2));
    spiller.drain(1.0);
    spiller.drain(1.0);
    spiller.finish();
  }
  const TraceFile file = read_trace_file(path);
  ASSERT_EQ(file.events.size(), 2u);
  EXPECT_EQ(file.events[0].i0, 2);
  EXPECT_EQ(file.events[1].i0, 1);
  std::remove(path.c_str());
}

TEST(Rollup, EmptyRackRowsAreMarkedNotZero) {
  RollupConfig cfg;
  cfg.enabled = true;
  cfg.interval_s = 1.0;
  cfg.nodes_per_rack = 2;
  FleetRollup rollup{4, cfg};

  // Only rack 0's nodes report this interval; rack 1 is silent.
  rollup.begin(1.0);
  rollup.observe(0, 50.0, 100.0, false, false);
  rollup.observe(1, 52.0, 110.0, false, false);
  rollup.commit(0, 0);

  const RollupSample& rack0 = rollup.rack_series(0).back();
  EXPECT_EQ(rack0.members, 2u);
  EXPECT_DOUBLE_EQ(rack0.max_temp_c, 52.0);

  // The empty rack keeps its interval-aligned row but is explicitly marked:
  // members 0 and NaN aggregates, not a 0 °C / 0 W reading.
  const RollupSample& rack1 = rollup.rack_series(1).back();
  EXPECT_EQ(rack1.members, 0u);
  EXPECT_TRUE(std::isnan(rack1.max_temp_c));
  EXPECT_TRUE(std::isnan(rack1.avg_temp_c));
  EXPECT_TRUE(std::isnan(rack1.power_w));

  // Fleet folds only the racks that reported: no NaN poisoning, no zeros.
  const RollupSample& fleet = rollup.fleet_series().back();
  EXPECT_EQ(fleet.members, 2u);
  EXPECT_DOUBLE_EQ(fleet.max_temp_c, 52.0);
  EXPECT_DOUBLE_EQ(fleet.power_w, 210.0);

  // NaN compares false against any threshold: the empty rack can never fire
  // a per-rack temperature alert (and a 0 °C row would never have either,
  // which is exactly how the old zeros masked dead racks).
  AlertWatchdog dog{{{"hot", AlertKind::kMaxTemp, -100.0, 0.0, true}}, rollup.rack_count()};
  dog.evaluate(1.0, rollup);
  ASSERT_EQ(dog.events().size(), 1u);  // rack 0 fires (threshold -100)
  EXPECT_EQ(dog.events()[0].rack, 0);

  // An all-empty interval yields a NaN fleet row too.
  rollup.begin(2.0);
  rollup.commit(0, 0);
  EXPECT_EQ(rollup.fleet_series().back().members, 0u);
  EXPECT_TRUE(std::isnan(rollup.fleet_series().back().max_temp_c));
}

TEST(Alerts, RejectsPerRackRateRules) {
  RollupConfig cfg;
  cfg.enabled = true;
  FleetRollup rollup{2, cfg};
  // The rate kinds derive from fleet-wide cumulative counters; per_rack on
  // them used to be silently ignored — now it is a rejected config error.
  EXPECT_DEATH(
      (AlertWatchdog{{{"fs", AlertKind::kFailsafeRate, 1.0, 0.0, true}}, rollup.rack_count()}),
      "fleet-scope only");
  EXPECT_DEATH(
      (AlertWatchdog{{{"sf", AlertKind::kSensorFaultRate, 1.0, 0.0, true}},
                     rollup.rack_count()}),
      "fleet-scope only");
}

TEST(OpenMetrics, NonFiniteValuesUseCanonicalSpellings) {
  MetricsSnapshot snap;
  snap.gauges["gauge.missing"] = std::numeric_limits<double>::quiet_NaN();
  snap.gauges["gauge.ceiling"] = std::numeric_limits<double>::infinity();
  snap.gauges["gauge.floor"] = -std::numeric_limits<double>::infinity();

  const std::string text = render_openmetrics(snap, nullptr, nullptr, nullptr, 1.0);
  EXPECT_NE(text.find("thermctl_gauge_missing NaN\n"), std::string::npos);
  EXPECT_NE(text.find("thermctl_gauge_ceiling +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("thermctl_gauge_floor -Inf\n"), std::string::npos);
  // The ABNF-violating printf spellings must not appear anywhere.
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);

  // An empty-rack rollup row flows through as a valid NaN sample.
  RollupConfig cfg;
  cfg.enabled = true;
  cfg.nodes_per_rack = 1;
  FleetRollup rollup{2, cfg};
  rollup.begin(1.0);
  rollup.observe(0, 50.0, 100.0, false, false);
  rollup.commit(0, 0);
  const std::string with_rollup =
      render_openmetrics(MetricsSnapshot{}, &rollup, nullptr, nullptr, 1.0);
  EXPECT_NE(with_rollup.find("thermctl_rack_max_temp_celsius{rack=\"1\"} NaN"),
            std::string::npos);
  EXPECT_EQ(with_rollup.find("nan"), std::string::npos);
}

TEST(OpenMetrics, CapturingSinkKeepsLatest) {
  CapturingTelemetrySink sink;
  sink.on_exposition(1.0, "first");
  sink.on_exposition(2.0, "second");
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.last(), "second");
  EXPECT_DOUBLE_EQ(sink.last_t_s(), 2.0);
}

}  // namespace
}  // namespace thermctl::obs
