#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

namespace thermctl::obs {
namespace {

TEST(Metrics, CounterAccumulatesAndHandleIsStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("engine.steps");
  c.inc();
  c.add(41);
  // Re-looking-up the same name must return the same object, not a fresh one.
  EXPECT_EQ(&reg.counter("engine.steps"), &c);
  EXPECT_EQ(reg.counter("engine.steps").value(), 42u);
}

TEST(Metrics, GaugeTracksLastWriteAndSetFlag) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("engine.sim_time_s");
  EXPECT_FALSE(g.is_set());
  g.set(1.5);
  g.set(3.0);
  EXPECT_TRUE(g.is_set());
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(Metrics, UnsetGaugeStaysOutOfSnapshot) {
  MetricsRegistry reg;
  reg.gauge("never_written");
  reg.gauge("written").set(7.0);
  const MetricsSnapshot snap = reg.merged();
  EXPECT_EQ(snap.gauges.count("never_written"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("written"), 7.0);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("duty", {10.0, 20.0, 30.0});
  h.observe(5.0);    // bucket 0 (≤ 10)
  h.observe(10.0);   // bucket 0: bounds are inclusive upper edges
  h.observe(10.01);  // bucket 1
  h.observe(30.0);   // bucket 2
  h.observe(99.0);   // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 10.0 + 10.01 + 30.0 + 99.0);
}

TEST(Metrics, HistogramReRegistrationReturnsSameInstance) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("temp", {50.0, 60.0});
  h.observe(55.0);
  Histogram& again = reg.histogram("temp", {50.0, 60.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.total_count(), 1u);
}

TEST(Metrics, ShardsAreIndependentWriters) {
  MetricsRegistry reg{3};
  reg.shard(0).counter("hits").add(1);
  reg.shard(2).counter("hits").add(10);
  // Same name in different shards must be different objects.
  EXPECT_NE(&reg.shard(0).counter("hits"), &reg.shard(2).counter("hits"));
  EXPECT_EQ(reg.shard(1).counter("hits").value(), 0u);
}

TEST(Metrics, MergedFoldsCountersAndHistogramsBySum) {
  MetricsRegistry reg{2};
  reg.shard(0).counter("retries").add(3);
  reg.shard(1).counter("retries").add(4);
  reg.shard(0).histogram("t", {1.0, 2.0}).observe(0.5);
  reg.shard(1).histogram("t", {1.0, 2.0}).observe(1.5);
  reg.shard(1).histogram("t", {1.0, 2.0}).observe(9.0);

  const MetricsSnapshot snap = reg.merged();
  EXPECT_EQ(snap.counters.at("retries"), 7u);
  const auto& h = snap.histograms.at("t");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(h.total, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 11.0);
}

TEST(Metrics, MergedGaugeTakesHighestShardThatSetIt) {
  MetricsRegistry reg{3};
  reg.shard(0).gauge("rate").set(1.0);
  reg.shard(1).gauge("rate").set(2.0);
  // Shard 2 registers but never writes — must not clobber shard 1's value.
  reg.shard(2).gauge("rate");
  EXPECT_DOUBLE_EQ(reg.merged().gauges.at("rate"), 2.0);
}

TEST(Metrics, MergeIsDeterministicAcrossRepeats) {
  // The sweep determinism contract: merging the same shards twice (or a
  // snapshot of them, in the same order) yields identical results.
  MetricsRegistry reg{4};
  for (std::size_t s = 0; s < 4; ++s) {
    reg.shard(s).counter("steps").add(100 * (s + 1));
    reg.shard(s).gauge("last").set(static_cast<double>(s));
    reg.shard(s).histogram("h", {10.0}).observe(static_cast<double>(s));
  }
  const MetricsSnapshot a = reg.merged();
  const MetricsSnapshot b = reg.merged();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.histograms.at("h").counts, b.histograms.at("h").counts);
  EXPECT_DOUBLE_EQ(a.gauges.at("last"), 3.0);  // ascending fold ⇒ last shard wins
}

TEST(Metrics, SnapshotMergeFoldsPointwise) {
  MetricsRegistry r1;
  r1.counter("c").add(1);
  r1.gauge("g").set(1.0);
  r1.histogram("h", {5.0}).observe(2.0);
  MetricsRegistry r2;
  r2.counter("c").add(2);
  r2.counter("only_in_2").add(9);
  r2.gauge("g").set(2.0);
  r2.histogram("h", {5.0}).observe(7.0);

  MetricsSnapshot acc = r1.merged();
  acc.merge(r2.merged());
  EXPECT_EQ(acc.counters.at("c"), 3u);
  EXPECT_EQ(acc.counters.at("only_in_2"), 9u);
  EXPECT_DOUBLE_EQ(acc.gauges.at("g"), 2.0);  // later fold wins
  EXPECT_EQ(acc.histograms.at("h").counts, (std::vector<std::uint64_t>{1, 1}));
  EXPECT_FALSE(acc.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

}  // namespace
}  // namespace thermctl::obs
