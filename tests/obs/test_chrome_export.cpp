// Structural tests for the Chrome trace exporter's control-plane and
// watchdog events: plane_budget / plane_policy_update / alert instants must
// carry their full args payload and plane failsafe episodes must export as
// spans — the contract tools/validate_chrome_trace.py enforces in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_export.hpp"
#include "obs/trace.hpp"

namespace thermctl::obs {
namespace {

std::string export_to_string(const std::vector<TraceEvent>& events) {
  const std::string path = testing::TempDir() + "chrome_export_test.json";
  write_chrome_trace(path, events);
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(ChromeExport, PlaneBudgetInstantCarriesFullPayload) {
  const std::vector<TraceEvent> events = {
      TraceEvent{.t_s = 1.5,
                 .node = 3,
                 .type = TraceEventType::kPlaneBudget,
                 .subsystem = TraceSubsystem::kPlane,
                 .flags = kTraceFlagChanged,
                 .i0 = 2200000,
                 .a = 95.0,
                 .b = 103.5},
  };
  const std::string json = export_to_string(events);
  EXPECT_NE(json.find("\"name\":\"plane_budget\""), std::string::npos);
  EXPECT_NE(json.find("\"budget_w\":95"), std::string::npos);
  EXPECT_NE(json.find("\"wall_w\":103.5"), std::string::npos);
  EXPECT_NE(json.find("\"cap_khz\":2200000"), std::string::npos);
  EXPECT_NE(json.find("\"changed\":1"), std::string::npos);
  // Cap moved, so a plane_cap counter track sample rides along.
  EXPECT_NE(json.find("\"name\":\"plane_cap\""), std::string::npos);
}

TEST(ChromeExport, PlanePolicyUpdateCarriesPp) {
  const std::vector<TraceEvent> events = {
      TraceEvent{.t_s = 2.0,
                 .node = 0,
                 .type = TraceEventType::kPlanePolicyUpdate,
                 .subsystem = TraceSubsystem::kPlane,
                 .i0 = 4},
  };
  const std::string json = export_to_string(events);
  EXPECT_NE(json.find("\"name\":\"plane_policy_update\""), std::string::npos);
  EXPECT_NE(json.find("\"pp\":4"), std::string::npos);
}

TEST(ChromeExport, PlaneFailsafeEpisodeExportsAsSpan) {
  const std::vector<TraceEvent> events = {
      TraceEvent{.t_s = 3.0,
                 .node = 1,
                 .type = TraceEventType::kPlaneFailsafeEnter,
                 .subsystem = TraceSubsystem::kPlane,
                 .a = 2.5},
      TraceEvent{.t_s = 7.0,
                 .node = 1,
                 .type = TraceEventType::kPlaneFailsafeExit,
                 .subsystem = TraceSubsystem::kPlane,
                 .i0 = 9},
  };
  const std::string json = export_to_string(events);
  EXPECT_NE(json.find("\"name\":\"plane_autonomous\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"start_s\":3"), std::string::npos);
  EXPECT_NE(json.find("\"end_s\":7"), std::string::npos);
  // 4 s span in trace microseconds.
  EXPECT_NE(json.find("\"dur\":4000000"), std::string::npos);
}

TEST(ChromeExport, OpenFailsafeSpanClosesAtLastTimestamp) {
  const std::vector<TraceEvent> events = {
      TraceEvent{.t_s = 1.0,
                 .node = 0,
                 .type = TraceEventType::kPlaneFailsafeEnter,
                 .subsystem = TraceSubsystem::kPlane},
      TraceEvent{.t_s = 6.0,
                 .node = 0,
                 .type = TraceEventType::kWindowRound,
                 .subsystem = TraceSubsystem::kFan},
  };
  const std::string json = export_to_string(events);
  EXPECT_NE(json.find("\"name\":\"plane_autonomous\""), std::string::npos);
  EXPECT_NE(json.find("\"open\":true"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5000000"), std::string::npos);
}

TEST(ChromeExport, AlertInstantsCarryRuleRackValueThreshold) {
  const std::vector<TraceEvent> events = {
      TraceEvent{.t_s = 10.0,
                 .node = 0,
                 .type = TraceEventType::kAlertFire,
                 .subsystem = TraceSubsystem::kAlert,
                 .i0 = 1,
                 .i1 = -1,
                 .a = 312.5,
                 .b = 300.0},
      TraceEvent{.t_s = 14.0,
                 .node = 0,
                 .type = TraceEventType::kAlertClear,
                 .subsystem = TraceSubsystem::kAlert,
                 .i0 = 1,
                 .i1 = -1,
                 .a = 290.0,
                 .b = 300.0},
  };
  const std::string json = export_to_string(events);
  EXPECT_NE(json.find("\"name\":\"alert_fire\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alert_clear\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rack\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"value\":312.5"), std::string::npos);
  EXPECT_NE(json.find("\"threshold\":300"), std::string::npos);
  // The alert lane gets a thread_name metadata record.
  EXPECT_NE(json.find("\"alert\""), std::string::npos);
}

}  // namespace
}  // namespace thermctl::obs
