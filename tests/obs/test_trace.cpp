#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/chrome_export.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_summary.hpp"

namespace thermctl::obs {
namespace {

TraceEvent fan_retarget(double t, double from, double to, std::uint32_t extra_flags = 0) {
  return TraceEvent{.t_s = t,
                    .type = TraceEventType::kFanRetarget,
                    .subsystem = TraceSubsystem::kFan,
                    .flags = kTraceFlagWriteOk | extra_flags,
                    .i0 = 3,
                    .a = from,
                    .b = to};
}

TraceEvent dvfs_trigger(double t, double from, double to, std::int64_t rounds) {
  return TraceEvent{.t_s = t,
                    .type = TraceEventType::kTdvfsTrigger,
                    .subsystem = TraceSubsystem::kTdvfs,
                    .i0 = rounds,
                    .i1 = 2,
                    .a = from,
                    .b = to};
}

TEST(TraceRing, StampsNodeAndClockTime) {
  TraceRing ring{7, 8};
  ring.set_time_s(2.5);
  ring.emit(TraceEvent{.type = TraceEventType::kI2cRetry, .subsystem = TraceSubsystem::kI2c});
  ring.emit(TraceEvent{.t_s = 9.0, .type = TraceEventType::kWindowRound});
  const std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].node, 7);
  EXPECT_DOUBLE_EQ(events[0].t_s, 2.5);  // ring clock fills a zero timestamp
  EXPECT_DOUBLE_EQ(events[1].t_s, 9.0);  // explicit timestamps pass through
}

TEST(TraceRing, WrapsKeepingNewestAndCountsDrops) {
  TraceRing ring{0, 4};
  for (int i = 0; i < 10; ++i) {
    ring.emit(TraceEvent{.t_s = static_cast<double>(i), .type = TraceEventType::kWindowRound});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order of the surviving (newest) events: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t_s, 6.0 + i);
  }
}

TEST(TraceRing, ClearResetsEverything) {
  TraceRing ring{0, 4};
  ring.emit(TraceEvent{.t_s = 1.0});
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(TraceRing, ReadNewAdvancesCursorWithoutLoss) {
  TraceRing ring{0, 8};
  for (int i = 0; i < 3; ++i) {
    ring.emit(TraceEvent{.t_s = 1.0 + i, .type = TraceEventType::kWindowRound});
  }
  std::vector<TraceEvent> out;
  std::uint64_t lost = 0;
  std::uint64_t cursor = ring.read_new(0, 0, out, lost);
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(lost, 0u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].t_s, 1.0);

  // Nothing new: the cursor holds and nothing is appended.
  cursor = ring.read_new(cursor, 0, out, lost);
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(out.size(), 3u);

  ring.emit(TraceEvent{.t_s = 9.0, .type = TraceEventType::kWindowRound});
  cursor = ring.read_new(cursor, 0, out, lost);
  EXPECT_EQ(cursor, 4u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out.back().t_s, 9.0);
  EXPECT_EQ(lost, 0u);
}

TEST(TraceRing, ReadNewCountsLapLossAndHonorsBudget) {
  TraceRing ring{0, 4};
  for (int i = 0; i < 10; ++i) {
    ring.emit(TraceEvent{.t_s = static_cast<double>(i), .type = TraceEventType::kWindowRound});
  }
  // Cursor still at 0 but emissions 0..5 are gone: only 6..9 survive.
  std::vector<TraceEvent> out;
  std::uint64_t lost = 0;
  std::uint64_t cursor = ring.read_new(0, 2, out, lost);
  EXPECT_EQ(lost, 6u);
  ASSERT_EQ(out.size(), 2u);  // budget of 2 defers the rest
  EXPECT_DOUBLE_EQ(out[0].t_s, 6.0);
  EXPECT_DOUBLE_EQ(out[1].t_s, 7.0);
  EXPECT_EQ(cursor, 8u);

  cursor = ring.read_new(cursor, 2, out, lost);
  EXPECT_EQ(cursor, 10u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out.back().t_s, 9.0);
  EXPECT_EQ(lost, 6u);  // no further loss once the reader catches up
}

TEST(RunTrace, DroppedByNodeIsPerNodeNotAggregate) {
  RunTrace trace{3, 2};
  trace.ring(0).emit(TraceEvent{.t_s = 1.0});
  for (int i = 0; i < 5; ++i) {
    trace.ring(2).emit(TraceEvent{.t_s = 1.0 + i});
  }
  const std::vector<std::uint64_t> dropped = trace.dropped_by_node();
  ASSERT_EQ(dropped.size(), 3u);
  EXPECT_EQ(dropped[0], 0u);
  EXPECT_EQ(dropped[1], 0u);
  EXPECT_EQ(dropped[2], 3u);
  EXPECT_EQ(trace.total_dropped(), 3u);
}

TEST(TraceEmitMacro, NullRingIsANoOp) {
  TraceRing* no_ring = nullptr;
  // Must compile and do nothing — this is the disabled-tracing hot path.
  THERMCTL_TRACE_EMIT(no_ring, (TraceEvent{.t_s = 1.0}));
  THERMCTL_TRACE_SET_TIME(no_ring, 1.0);
  TraceRing ring{0, 4};
  TraceRing* live = &ring;
  THERMCTL_TRACE_SET_TIME(live, 4.0);
  THERMCTL_TRACE_EMIT(live, (TraceEvent{.type = TraceEventType::kWindowRound}));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_DOUBLE_EQ(ring.events()[0].t_s, 4.0);
}

TEST(RunTrace, MergesByTimeThenNode) {
  RunTrace trace{2, 8};
  trace.ring(1).emit(TraceEvent{.t_s = 1.0, .type = TraceEventType::kWindowRound});
  trace.ring(0).emit(TraceEvent{.t_s = 1.0, .type = TraceEventType::kWindowRound});
  trace.ring(0).emit(TraceEvent{.t_s = 0.5, .type = TraceEventType::kWindowRound});
  const std::vector<TraceEvent> merged = trace.merged_events();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged[0].t_s, 0.5);
  EXPECT_EQ(merged[1].node, 0);  // ties break by node index
  EXPECT_EQ(merged[2].node, 1);
  EXPECT_EQ(trace.total_emitted(), 3u);
  EXPECT_EQ(trace.total_dropped(), 0u);
}

TEST(TraceIo, RoundTripsBitExactly) {
  const std::string path = ::testing::TempDir() + "thermctl_roundtrip.thermtrace";
  RunTrace trace{2, 16};
  trace.ring(0).emit(fan_retarget(1.0, 10.0, 20.0));
  trace.ring(1).emit(dvfs_trigger(2.0, 2.4, 2.2, 3));
  trace.ring(0).emit(TraceEvent{.t_s = 3.0,
                                .type = TraceEventType::kWindowRound,
                                .subsystem = TraceSubsystem::kFan,
                                .flags = kTraceFlagLevel2Valid,
                                .a = 47.25,
                                .b = 0.5,
                                .c = 0.125});
  write_trace_file(path, trace);

  const TraceFile file = read_trace_file(path);
  EXPECT_EQ(file.node_count, 2u);
  const std::vector<TraceEvent> expected = trace.merged_events();
  ASSERT_EQ(file.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(file.events[i].t_s, expected[i].t_s);
    EXPECT_EQ(file.events[i].node, expected[i].node);
    EXPECT_EQ(file.events[i].type, expected[i].type);
    EXPECT_EQ(file.events[i].subsystem, expected[i].subsystem);
    EXPECT_EQ(file.events[i].flags, expected[i].flags);
    EXPECT_EQ(file.events[i].i0, expected[i].i0);
    EXPECT_EQ(file.events[i].i1, expected[i].i1);
    EXPECT_DOUBLE_EQ(file.events[i].a, expected[i].a);
    EXPECT_DOUBLE_EQ(file.events[i].b, expected[i].b);
    EXPECT_DOUBLE_EQ(file.events[i].c, expected[i].c);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagicAndMissingFile) {
  const std::string path = ::testing::TempDir() + "thermctl_not_a_trace.bin";
  {
    std::ofstream out{path, std::ios::binary};
    out << "definitely not a trace file, padded well past the header size";
  }
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  EXPECT_THROW(read_trace_file(::testing::TempDir() + "thermctl_nonexistent.thermtrace"),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceSummary, ModeChangeSequenceSkipsFailedWrites) {
  std::vector<TraceEvent> events;
  events.push_back(fan_retarget(1.0, 1.0, 10.0));
  TraceEvent failed = fan_retarget(2.0, 10.0, 20.0);
  failed.flags = 0;  // PWM write failed — hardware never changed mode
  events.push_back(failed);
  events.push_back(fan_retarget(3.0, 10.0, 25.0, kTraceFlagUsedLevel2));

  const std::vector<ModeChange> changes = mode_change_sequence(events);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_DOUBLE_EQ(changes[0].to, 10.0);
  EXPECT_FALSE(changes[0].used_level2);
  EXPECT_DOUBLE_EQ(changes[1].to, 25.0);
  EXPECT_TRUE(changes[1].used_level2);
}

TEST(TraceSummary, ModeChangeSequenceCarriesDvfsConsistency) {
  std::vector<TraceEvent> events;
  events.push_back(dvfs_trigger(5.0, 2.4, 2.2, 3));
  events.push_back(TraceEvent{.t_s = 40.0,
                              .type = TraceEventType::kTdvfsRestore,
                              .subsystem = TraceSubsystem::kTdvfs,
                              .i0 = 10,
                              .a = 2.2,
                              .b = 2.4});
  const std::vector<ModeChange> changes = mode_change_sequence(events);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].subsystem, TraceSubsystem::kTdvfs);
  EXPECT_EQ(changes[0].consistency_rounds, 3);
  EXPECT_FALSE(changes[0].is_restore);
  EXPECT_TRUE(changes[1].is_restore);
  EXPECT_EQ(changes[1].consistency_rounds, 10);
  EXPECT_DOUBLE_EQ(changes[1].to, 2.4);
}

TEST(TraceSummary, ResidencyChargesTimeBetweenChanges) {
  std::vector<TraceEvent> events;
  events.push_back(fan_retarget(10.0, 1.0, 20.0));
  events.push_back(fan_retarget(30.0, 20.0, 50.0));
  const auto residency = mode_residency(events, TraceSubsystem::kFan, 100.0);
  ASSERT_EQ(residency.count(0), 1u);
  const auto& node0 = residency.at(0);
  EXPECT_DOUBLE_EQ(node0.at(1.0), 10.0);   // t=0 → first change, at its from-mode
  EXPECT_DOUBLE_EQ(node0.at(20.0), 20.0);  // 10 s → 30 s
  EXPECT_DOUBLE_EQ(node0.at(50.0), 70.0);  // 30 s → end of run
}

TEST(TraceSummary, DecisionStatsCountPerNode) {
  std::vector<TraceEvent> events;
  TraceEvent round{.t_s = 1.0,
                   .type = TraceEventType::kWindowRound,
                   .subsystem = TraceSubsystem::kFan,
                   .flags = kTraceFlagLevel2Valid};
  events.push_back(round);
  TraceEvent decision{.t_s = 1.0,
                      .type = TraceEventType::kModeDecision,
                      .subsystem = TraceSubsystem::kFan,
                      .flags = kTraceFlagChanged | kTraceFlagUsedLevel2 | kTraceFlagClamped};
  events.push_back(decision);
  events.push_back(fan_retarget(1.0, 1.0, 10.0));
  TraceEvent other_node = dvfs_trigger(2.0, 2.4, 2.2, 3);
  other_node.node = 1;
  events.push_back(other_node);

  const auto stats = decision_stats(events);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at(0).window_rounds, 1u);
  EXPECT_EQ(stats.at(0).decisions, 1u);
  EXPECT_EQ(stats.at(0).decisions_changed, 1u);
  EXPECT_EQ(stats.at(0).level2_decisions, 1u);
  EXPECT_EQ(stats.at(0).clamped_decisions, 1u);
  EXPECT_EQ(stats.at(0).fan_retargets, 1u);
  EXPECT_EQ(stats.at(0).tdvfs_triggers, 0u);
  EXPECT_EQ(stats.at(1).tdvfs_triggers, 1u);
}

TEST(TraceSummary, RenderersProduceReadableViews) {
  std::vector<TraceEvent> events;
  events.push_back(fan_retarget(1.0, 1.0, 13.0, kTraceFlagUsedLevel2));
  events.push_back(dvfs_trigger(2.0, 2.4, 2.2, 3));
  const std::string timeline = render_timeline(events);
  EXPECT_NE(timeline.find("node0"), std::string::npos);
  EXPECT_NE(timeline.find("13"), std::string::npos);
  const std::string residency = render_residency(events, TraceSubsystem::kFan, 10.0);
  EXPECT_NE(residency.find("13"), std::string::npos);
  const std::string causality = render_causality(events);
  EXPECT_FALSE(causality.empty());
}

TEST(ChromeExport, EmitsWellFormedTraceEventArray) {
  const std::string path = ::testing::TempDir() + "thermctl_chrome.json";
  RunTrace trace{1, 16};
  trace.ring(0).emit(fan_retarget(1.0, 1.0, 10.0));
  trace.ring(0).emit(TraceEvent{.t_s = 2.0, .type = TraceEventType::kFailsafeEnter,
                                .subsystem = TraceSubsystem::kFan, .a = 100.0});
  trace.ring(0).emit(TraceEvent{.t_s = 5.0, .type = TraceEventType::kFailsafeExit,
                                .subsystem = TraceSubsystem::kFan, .i0 = 4});
  write_chrome_trace(path, trace);

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string json{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fan_retarget\""), std::string::npos);
  // The fail-safe episode renders as a 3-second span ("X" phase, µs units).
  EXPECT_NE(json.find("\"failsafe_cooling\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3000000"), std::string::npos);
  // Lane metadata names the node process.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace thermctl::obs
