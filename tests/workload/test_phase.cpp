#include "workload/phase.hpp"

#include <gtest/gtest.h>

namespace thermctl::workload {
namespace {

TEST(Phase, BuildersSetKinds) {
  EXPECT_EQ(compute_phase(1.0).kind, PhaseKind::kCompute);
  EXPECT_EQ(comm_phase(Seconds{0.5}).kind, PhaseKind::kCommunicate);
  EXPECT_EQ(idle_phase(Seconds{0.5}).kind, PhaseKind::kIdle);
  EXPECT_EQ(barrier_phase().kind, PhaseKind::kBarrier);
}

TEST(Phase, ComputeDefaultsToFullUtilization) {
  EXPECT_DOUBLE_EQ(compute_phase(1.0).util.fraction(), 1.0);
}

TEST(Phase, CommDefaultUtilization) {
  EXPECT_DOUBLE_EQ(comm_phase(Seconds{1.0}).util.fraction(), 0.35);
}

TEST(Phase, TotalWorkSumsComputeOnly) {
  Program p{compute_phase(2.0), comm_phase(Seconds{1.0}), compute_phase(3.0), barrier_phase()};
  EXPECT_DOUBLE_EQ(total_work(p), 5.0);
}

TEST(Phase, TotalFixedWallSumsNonCompute) {
  Program p{compute_phase(2.0), comm_phase(Seconds{1.5}), idle_phase(Seconds{0.5})};
  EXPECT_DOUBLE_EQ(total_fixed_wall(p).value(), 2.0);
}

TEST(Phase, IdealDurationCombines) {
  Program p{compute_phase(4.8), comm_phase(Seconds{1.0})};
  // 4.8 GHz-s at 2.4 GHz = 2 s compute + 1 s comm.
  EXPECT_DOUBLE_EQ(ideal_duration(p, GigaHertz{2.4}).value(), 3.0);
  // At 1.0 GHz the compute stretches to 4.8 s but the comm does not.
  EXPECT_DOUBLE_EQ(ideal_duration(p, GigaHertz{1.0}).value(), 5.8);
}

}  // namespace
}  // namespace thermctl::workload
