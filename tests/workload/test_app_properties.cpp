// Property-based tests of the parallel-app execution model: conservation
// laws that must hold for any randomly generated program set.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/app.hpp"

namespace thermctl::workload {
namespace {

struct GeneratedApp {
  std::vector<Program> programs;
  double max_ideal_s = 0.0;   // slowest rank's ideal duration
  double min_ideal_s = 1e30;  // fastest rank's ideal duration
};

GeneratedApp random_app(Rng& rng, double freq_ghz) {
  const int ranks = 1 + static_cast<int>(rng.below(4));
  const int iterations = 2 + static_cast<int>(rng.below(6));
  GeneratedApp out;
  // Shared iteration structure (same barrier count), per-rank random weights.
  std::vector<std::vector<double>> work(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    Program p;
    for (int it = 0; it < iterations; ++it) {
      const double w = 0.5 + rng.uniform() * 4.0;
      work[static_cast<std::size_t>(r)].push_back(w);
      p.push_back(compute_phase(w));
      if (rng.uniform() < 0.7) {
        p.push_back(comm_phase(Seconds{0.1 + rng.uniform() * 0.8}));
      }
      p.push_back(barrier_phase());
    }
    out.programs.push_back(std::move(p));
  }
  for (const Program& p : out.programs) {
    const double ideal = ideal_duration(p, GigaHertz{freq_ghz}).value();
    out.max_ideal_s = std::max(out.max_ideal_s, ideal);
    out.min_ideal_s = std::min(out.min_ideal_s, ideal);
  }
  return out;
}

class AppPropertyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AppPropertyFuzz, ConservationLawsHold) {
  Rng rng{GetParam()};
  const double freq = 1.0 + rng.uniform() * 1.4;
  GeneratedApp gen = random_app(rng, freq);
  const std::size_t ranks = gen.programs.size();

  ParallelApp app{"fuzz", gen.programs};
  const std::vector<GigaHertz> freqs(ranks, GigaHertz{freq});
  const double dt = 0.01 + rng.uniform() * 0.2;
  double elapsed = 0.0;
  while (!app.done() && elapsed < 1000.0) {
    const auto utils = app.step(Seconds{dt}, freqs);
    for (const Utilization& u : utils) {
      ASSERT_GE(u.fraction(), 0.0);
      ASSERT_LE(u.fraction(), 1.0);
    }
    elapsed += dt;
  }
  ASSERT_TRUE(app.done()) << "seed " << GetParam();

  // Law 1: completion is gated by the slowest rank, and barriers can only
  // add time, never remove it. Allow one step of quantization slack.
  EXPECT_GE(app.completion_time().value(), gen.max_ideal_s - dt) << "seed " << GetParam();

  // Law 2: with equal frequencies the job cannot take longer than the sum
  // of per-barrier maxima; a crude upper bound is the sum of all ranks'
  // ideal durations.
  double sum_ideal = 0.0;
  for (const Program& p : gen.programs) {
    sum_ideal += ideal_duration(p, GigaHertz{freq}).value();
  }
  EXPECT_LE(app.completion_time().value(), sum_ideal + dt * 2.0) << "seed " << GetParam();

  // Law 3: every rank's barrier wait is bounded by the ideal-duration spread
  // times the barrier count (waits accumulate only from imbalance).
  for (std::size_t r = 0; r < ranks; ++r) {
    EXPECT_GE(app.barrier_wait_time(r).value(), -1e-9);
    EXPECT_LE(app.barrier_wait_time(r).value(),
              app.completion_time().value() - gen.min_ideal_s + 2.0 * dt)
        << "seed " << GetParam() << " rank " << r;
  }

  // Law 4: progress is complete and phase bookkeeping consistent.
  EXPECT_DOUBLE_EQ(app.progress(), 1.0);
  for (std::size_t r = 0; r < ranks; ++r) {
    EXPECT_FALSE(app.current_phase_kind(r).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppPropertyFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u, 99u, 111u,
                                           222u, 333u, 444u, 555u, 666u));

TEST(AppProperty, StepSizeInvariance) {
  // The same programs stepped with different dt must complete at (nearly)
  // the same simulated time — barrier resolution is intra-step.
  auto run_with_dt = [](double dt) {
    Rng rng{909};
    GeneratedApp gen = random_app(rng, 2.0);
    ParallelApp app{"t", gen.programs};
    const std::vector<GigaHertz> freqs(gen.programs.size(), GigaHertz{2.0});
    while (!app.done()) {
      app.step(Seconds{dt}, freqs);
    }
    return app.completion_time().value();
  };
  const double coarse = run_with_dt(0.25);
  const double fine = run_with_dt(0.01);
  EXPECT_NEAR(coarse, fine, 0.26);  // within one coarse step
}

}  // namespace
}  // namespace thermctl::workload
