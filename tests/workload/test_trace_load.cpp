#include "workload/trace_load.hpp"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace thermctl::workload {
namespace {

TraceLoad three_point(TraceLoadOptions options = {}) {
  return TraceLoad{{{0.0, 0.1}, {10.0, 0.9}, {20.0, 0.5}}, options};
}

TEST(TraceLoad, StepHoldSemantics) {
  const TraceLoad load = three_point();
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(0.0)).fraction(), 0.1);
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(5.0)).fraction(), 0.1);
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(10.0)).fraction(), 0.9);
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(15.0)).fraction(), 0.9);
}

TEST(TraceLoad, LinearInterpolation) {
  TraceLoadOptions opts;
  opts.interpolate = true;
  const TraceLoad load = three_point(opts);
  EXPECT_NEAR(load.at(SimTime::from_seconds(5.0)).fraction(), 0.5, 1e-9);
  EXPECT_NEAR(load.at(SimTime::from_seconds(15.0)).fraction(), 0.7, 1e-9);
}

TEST(TraceLoad, PastEndIdlesUnlessLooping) {
  const TraceLoad load = three_point();
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(25.0)).fraction(), 0.0);
  EXPECT_TRUE(load.done(SimTime::from_seconds(20.0)));

  TraceLoadOptions opts;
  opts.loop = true;
  const TraceLoad looped = three_point(opts);
  EXPECT_FALSE(looped.done(SimTime::from_seconds(100.0)));
  // 25 s wraps to 5 s into the trace.
  EXPECT_DOUBLE_EQ(looped.at(SimTime::from_seconds(25.0)).fraction(), 0.1);
}

TEST(TraceLoad, DurationAndCount) {
  const TraceLoad load = three_point();
  EXPECT_DOUBLE_EQ(load.duration().value(), 20.0);
  EXPECT_EQ(load.sample_count(), 3u);
}

class TraceCsv : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/thermctl_trace.csv";
  void write(const std::string& contents) {
    std::ofstream out{path_};
    out << contents;
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceCsv, ParsesHeaderCommentsAndRows) {
  write("time_s,utilization\n# exported from prometheus\n0,0.2\n5,0.8\n10,0.4\n");
  const TraceLoad load = TraceLoad::from_csv(path_);
  EXPECT_EQ(load.sample_count(), 3u);
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(6.0)).fraction(), 0.8);
}

TEST_F(TraceCsv, ClampsUtilizationToUnit) {
  write("0,1.7\n5,-0.3\n");
  const TraceLoad load = TraceLoad::from_csv(path_);
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(0.0)).fraction(), 1.0);
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(5.0)).fraction(), 0.0);
}

TEST_F(TraceCsv, ThrowsOnMissingFile) {
  EXPECT_THROW(TraceLoad::from_csv("/nonexistent/trace.csv"), std::runtime_error);
}

TEST_F(TraceCsv, ThrowsOnGarbageRow) {
  write("0,0.5\nnot,a,number\n");
  EXPECT_THROW(TraceLoad::from_csv(path_), std::runtime_error);
}

TEST_F(TraceCsv, ThrowsOnEmptyFile) {
  write("# only comments\n");
  EXPECT_THROW(TraceLoad::from_csv(path_), std::runtime_error);
}

TEST(TraceLoadDeath, RejectsUnorderedTimes) {
  EXPECT_DEATH(TraceLoad({{5.0, 0.1}, {5.0, 0.2}}), "increasing");
}

TEST(TraceLoadDeath, RejectsEmpty) {
  EXPECT_DEATH(TraceLoad{std::vector<TraceSample>{}}, "sample");
}

}  // namespace
}  // namespace thermctl::workload
