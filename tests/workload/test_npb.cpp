#include "workload/npb.hpp"

#include <gtest/gtest.h>

#include "workload/app.hpp"

namespace thermctl::workload {
namespace {

TEST(Npb, BtProgramsHaveIterationStructure) {
  Rng rng{1};
  const auto programs = make_npb_programs(bt_class_b(), 4, rng);
  ASSERT_EQ(programs.size(), 4u);
  // Startup (comm + barrier) + 200 iterations of 3 x (compute, comm) plus a
  // barrier each.
  EXPECT_EQ(programs[0].size(), 2u + 200u * 7u);
  std::size_t barriers = 0;
  for (const Phase& ph : programs[0]) {
    if (ph.kind == PhaseKind::kBarrier) {
      ++barriers;
    }
  }
  EXPECT_EQ(barriers, 201u);
}

TEST(Npb, StragglersPresentButBounded) {
  NpbParams params = bt_class_b();
  Rng rng{11};
  const auto programs = make_npb_programs(params, 1, rng);
  // Count comm phases noticeably longer than the nominal sub-exchange.
  const double nominal = params.comm_per_iter.value() / params.comm_subphases;
  int stragglers = 0;
  int comms = 0;
  for (const Phase& ph : programs[0]) {
    if (ph.kind == PhaseKind::kCommunicate && ph.util.fraction() < 0.5) {
      ++comms;
      if (ph.wall.value() > nominal * (1.0 + params.comm_jitter) + 1e-9) {
        ++stragglers;
      }
    }
  }
  // Expect roughly straggler_prob * iterations events (one per affected
  // iteration), definitely not zero and well below the comm count.
  EXPECT_GT(stragglers, 20);
  EXPECT_LT(stragglers, 90);
  EXPECT_EQ(comms, 200 * params.comm_subphases);
}

TEST(Npb, BtIdealDurationNearPaperTable1) {
  Rng rng{1};
  const auto programs = make_npb_programs(bt_class_b(), 4, rng);
  const double ideal = ideal_duration(programs[0], GigaHertz{2.4}).value();
  // Table 1 reports 219 s for BT.B.4 at full speed.
  EXPECT_GT(ideal, 205.0);
  EXPECT_LT(ideal, 235.0);
}

TEST(Npb, LuShorterIterationsMoreOfThem) {
  const NpbParams bt = bt_class_b();
  const NpbParams lu = lu_class_b();
  EXPECT_GT(lu.iterations, bt.iterations);
  EXPECT_LT(lu.work_per_iter_ghz_s, bt.work_per_iter_ghz_s);
}

TEST(Npb, RankImbalanceIsPersistentButBounded) {
  NpbParams params = bt_class_b();
  params.work_jitter = 0.0;  // isolate the rank factor
  Rng rng{7};
  const auto programs = make_npb_programs(params, 4, rng);
  // Per-rank total work differs but within the configured imbalance.
  const double w0 = total_work(programs[0]);
  for (std::size_t r = 1; r < 4; ++r) {
    const double ratio = total_work(programs[r]) / w0;
    EXPECT_GT(ratio, 1.0 - 2.5 * params.rank_imbalance);
    EXPECT_LT(ratio, 1.0 + 2.5 * params.rank_imbalance);
  }
}

TEST(Npb, DeterministicGivenSeed) {
  Rng a{5};
  Rng b{5};
  const auto pa = make_npb_programs(bt_class_b(), 4, a);
  const auto pb = make_npb_programs(bt_class_b(), 4, b);
  ASSERT_EQ(pa[2].size(), pb[2].size());
  for (std::size_t i = 0; i < pa[2].size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[2][i].work_ghz_s, pb[2][i].work_ghz_s);
  }
}

TEST(Npb, RinseIterationsHeavier) {
  NpbParams params = bt_class_b();
  params.work_jitter = 0.0;
  params.rank_imbalance = 0.0;
  Rng rng{1};
  const auto programs = make_npb_programs(params, 1, rng);
  // Iteration k's first compute phase is at index 2 + 7k (startup pair, then
  // 7 phases per iteration: 3 x (compute, comm) + barrier).
  const double normal = programs[0][2 + 7 * 10].work_ghz_s;
  const double rinse = programs[0][2 + 7 * 50].work_ghz_s;
  EXPECT_NEAR(rinse / normal, params.rinse_factor, 1e-9);
}

TEST(Npb, RunsToCompletionUnderApp) {
  NpbParams params = bt_class_b();
  params.iterations = 5;  // miniature
  Rng rng{3};
  ParallelApp app{"bt-mini", make_npb_programs(params, 4, rng)};
  std::vector<GigaHertz> f(4, GigaHertz{2.4});
  double t = 0.0;
  while (!app.done() && t < 60.0) {
    app.step(Seconds{0.05}, f);
    t += 0.05;
  }
  EXPECT_TRUE(app.done());
  EXPECT_GT(app.completion_time().value(), 4.0);
  EXPECT_LT(app.completion_time().value(), 12.0);
}

TEST(NpbDeath, RejectsZeroRanks) {
  Rng rng{1};
  EXPECT_DEATH(make_npb_programs(bt_class_b(), 0, rng), "rank");
}

}  // namespace
}  // namespace thermctl::workload
