#include "workload/app.hpp"

#include <gtest/gtest.h>

namespace thermctl::workload {
namespace {

std::vector<GigaHertz> freqs(std::size_t n, double ghz) {
  return std::vector<GigaHertz>(n, GigaHertz{ghz});
}

/// Runs the app to completion with constant frequencies; returns wall time.
double run_to_completion(ParallelApp& app, double ghz, double dt = 0.05,
                         double limit = 10000.0) {
  const auto f = freqs(app.rank_count(), ghz);
  double t = 0.0;
  while (!app.done() && t < limit) {
    app.step(Seconds{dt}, f);
    t += dt;
  }
  return app.completion_time().value();
}

TEST(ParallelApp, SingleRankComputeDuration) {
  ParallelApp app{"t", {Program{compute_phase(4.8)}}};
  const double done = run_to_completion(app, 2.4);
  EXPECT_NEAR(done, 2.0, 0.051);
}

TEST(ParallelApp, ComputeStretchesWithLowerFrequency) {
  ParallelApp a{"t", {Program{compute_phase(4.8)}}};
  ParallelApp b{"t", {Program{compute_phase(4.8)}}};
  const double fast = run_to_completion(a, 2.4);
  const double slow = run_to_completion(b, 1.0);
  EXPECT_NEAR(slow / fast, 2.4, 0.1);
}

TEST(ParallelApp, CommPhaseIsFrequencyInsensitive) {
  ParallelApp a{"t", {Program{comm_phase(Seconds{2.0})}}};
  ParallelApp b{"t", {Program{comm_phase(Seconds{2.0})}}};
  EXPECT_NEAR(run_to_completion(a, 2.4), run_to_completion(b, 1.0), 0.051);
}

TEST(ParallelApp, UtilizationReflectsPhase) {
  ParallelApp app{"t", {Program{compute_phase(24.0), comm_phase(Seconds{5.0})}}};
  const auto f = freqs(1, 2.4);
  // During compute: utilization 1.0.
  auto u = app.step(Seconds{1.0}, f);
  EXPECT_NEAR(u[0].fraction(), 1.0, 1e-9);
  // Skip to the comm phase (10 s of compute total).
  for (int i = 0; i < 9; ++i) {
    app.step(Seconds{1.0}, f);
  }
  u = app.step(Seconds{1.0}, f);
  EXPECT_NEAR(u[0].fraction(), 0.35, 0.01);
}

TEST(ParallelApp, MixedSliceAveragesUtilization) {
  // 1.2 GHz-s at 2.4 GHz = 0.5 s compute, then comm at 0.35 — a 1 s slice
  // spans both: expected utilization 0.5*1.0 + 0.5*0.35 = 0.675.
  ParallelApp app{"t", {Program{compute_phase(1.2), comm_phase(Seconds{3.0})}}};
  const auto u = app.step(Seconds{1.0}, freqs(1, 2.4));
  EXPECT_NEAR(u[0].fraction(), 0.675, 1e-6);
}

TEST(ParallelApp, BarrierCouplesRanks) {
  // Rank 0 has twice the work; rank 1 must wait at the barrier.
  std::vector<Program> progs{
      Program{compute_phase(4.8), barrier_phase(), compute_phase(2.4)},
      Program{compute_phase(2.4), barrier_phase(), compute_phase(2.4)},
  };
  ParallelApp app{"t", std::move(progs)};
  run_to_completion(app, 2.4);
  // Rank 1 waited ~1 s at the barrier while rank 0 finished its 2 s slab.
  EXPECT_NEAR(app.barrier_wait_time(1).value(), 1.0, 0.1);
  EXPECT_NEAR(app.barrier_wait_time(0).value(), 0.0, 0.05);
  // Completion is gated by the slow rank: 2 + 1 = 3 s total for rank 0.
  EXPECT_NEAR(app.completion_time().value(), 3.0, 0.1);
}

TEST(ParallelApp, SlowNodeDelaysWholeJob) {
  // Same program everywhere, but rank 1's node runs at 1.0 GHz.
  std::vector<Program> progs(2, Program{compute_phase(4.8), barrier_phase(),
                                        compute_phase(4.8)});
  ParallelApp app{"t", std::move(progs)};
  std::vector<GigaHertz> f{GigaHertz{2.4}, GigaHertz{1.0}};
  double t = 0.0;
  while (!app.done() && t < 100.0) {
    app.step(Seconds{0.05}, f);
    t += 0.05;
  }
  // Job time is set by the 1.0 GHz rank: 2 * 4.8 s = 9.6 s.
  EXPECT_NEAR(app.completion_time().value(), 9.6, 0.15);
  // The fast rank (2 s per slab vs 4.8 s) waited ~2.8 s at the one barrier.
  EXPECT_NEAR(app.barrier_wait_time(0).value(), 2.8, 0.15);
}

TEST(ParallelApp, WaitUtilizationAppliedWhileBlocked) {
  std::vector<Program> progs{
      Program{compute_phase(48.0), barrier_phase()},  // 20 s at 2.4
      Program{compute_phase(2.4), barrier_phase()},   // 1 s at 2.4
  };
  ParallelApp app{"t", std::move(progs), Utilization{0.10}};
  const auto f = freqs(2, 2.4);
  for (int i = 0; i < 100; ++i) {  // 5 s in
    app.step(Seconds{0.05}, f);
  }
  const auto u = app.step(Seconds{1.0}, f);
  EXPECT_NEAR(u[0].fraction(), 1.0, 1e-6);   // still computing
  EXPECT_NEAR(u[1].fraction(), 0.10, 1e-6);  // blocked at barrier
}

TEST(ParallelApp, BarriersReleaseWithinOneSlice) {
  // Both ranks hit the barrier mid-slice; neither should lose the rest of
  // the slice to quantization.
  std::vector<Program> progs(2, Program{compute_phase(1.2), barrier_phase(),
                                        compute_phase(1.2)});
  ParallelApp app{"t", std::move(progs)};
  app.step(Seconds{1.5}, freqs(2, 2.4));  // 0.5 s + barrier + 0.5 s < 1.5 s
  EXPECT_TRUE(app.done());
}

TEST(ParallelApp, ProgressMonotone) {
  std::vector<Program> progs(2, Program{compute_phase(4.8), barrier_phase(),
                                        compute_phase(4.8)});
  ParallelApp app{"t", std::move(progs)};
  const auto f = freqs(2, 2.4);
  double prev = -1.0;
  while (!app.done()) {
    app.step(Seconds{0.25}, f);
    EXPECT_GE(app.progress(), prev);
    prev = app.progress();
  }
  EXPECT_DOUBLE_EQ(app.progress(), 1.0);
}

TEST(ParallelApp, FinishedRanksIdle) {
  std::vector<Program> progs{Program{compute_phase(1.2)}, Program{compute_phase(12.0)}};
  ParallelApp app{"t", std::move(progs)};
  const auto f = freqs(2, 2.4);
  for (int i = 0; i < 2; ++i) {
    app.step(Seconds{1.0}, f);
  }
  const auto u = app.step(Seconds{1.0}, f);
  EXPECT_NEAR(u[0].fraction(), 0.02, 1e-6);  // finished, idling
  EXPECT_NEAR(u[1].fraction(), 1.0, 1e-6);
}

TEST(ParallelApp, DoneAndCompletionTime) {
  ParallelApp app{"t", {Program{comm_phase(Seconds{1.0})}}};
  EXPECT_FALSE(app.done());
  app.step(Seconds{0.6}, freqs(1, 2.4));
  EXPECT_FALSE(app.done());
  app.step(Seconds{0.6}, freqs(1, 2.4));
  EXPECT_TRUE(app.done());
  EXPECT_NEAR(app.completion_time().value(), 1.2, 1e-9);
  EXPECT_NEAR(app.elapsed().value(), 1.2, 1e-9);
}

TEST(ParallelAppDeath, MismatchedBarrierCountsAbort) {
  std::vector<Program> progs{Program{barrier_phase()}, Program{compute_phase(1.0)}};
  EXPECT_DEATH(ParallelApp("t", std::move(progs)), "barrier");
}

TEST(ParallelAppDeath, WrongFrequencyCountAborts) {
  ParallelApp app{"t", {Program{compute_phase(1.0)}}};
  EXPECT_DEATH(app.step(Seconds{0.1}, freqs(2, 2.4)), "frequency");
}

}  // namespace
}  // namespace thermctl::workload
