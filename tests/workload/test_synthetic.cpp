#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

namespace thermctl::workload {
namespace {

TEST(CpuBurn, ProgramIsSolidCompute) {
  const Program p = cpu_burn_program(Seconds{300.0});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].kind, PhaseKind::kCompute);
  EXPECT_DOUBLE_EQ(p[0].util.fraction(), 1.0);
  // 300 s at the 2.4 GHz nominal = 720 GHz-s of work.
  EXPECT_DOUBLE_EQ(p[0].work_ghz_s, 720.0);
}

TEST(CpuBurn, DurationScalesWithNominalFrequency) {
  const Program p = cpu_burn_program(Seconds{60.0}, GigaHertz{1.0});
  EXPECT_DOUBLE_EQ(p[0].work_ghz_s, 60.0);
}

TEST(SegmentLoad, ConstantSegment) {
  SegmentLoad load{{LoadSegment{Seconds{10.0}, 0.7, 0.7, 0.0, Seconds{0.0}, 0.0}}};
  EXPECT_NEAR(load.at(SimTime::from_seconds(0.0)).fraction(), 0.7, 1e-9);
  EXPECT_NEAR(load.at(SimTime::from_seconds(9.9)).fraction(), 0.7, 1e-9);
}

TEST(SegmentLoad, RampInterpolatesLinearly) {
  SegmentLoad load{{LoadSegment{Seconds{10.0}, 0.0, 1.0, 0.0, Seconds{0.0}, 0.0}}};
  EXPECT_NEAR(load.at(SimTime::from_seconds(5.0)).fraction(), 0.5, 1e-9);
  EXPECT_NEAR(load.at(SimTime::from_seconds(2.5)).fraction(), 0.25, 1e-9);
}

TEST(SegmentLoad, PastEndIsIdle) {
  SegmentLoad load{{LoadSegment{Seconds{1.0}, 1.0, 1.0, 0.0, Seconds{0.0}, 0.0}}};
  EXPECT_DOUBLE_EQ(load.at(SimTime::from_seconds(2.0)).fraction(), 0.0);
  EXPECT_TRUE(load.done(SimTime::from_seconds(1.0)));
  EXPECT_FALSE(load.done(SimTime::from_seconds(0.5)));
}

TEST(SegmentLoad, SquareWaveJitterToggles) {
  SegmentLoad load{{LoadSegment{Seconds{10.0}, 0.5, 0.5, 0.3, Seconds{2.0}, 0.0}}};
  EXPECT_NEAR(load.at(SimTime::from_seconds(0.5)).fraction(), 0.8, 1e-9);   // high half
  EXPECT_NEAR(load.at(SimTime::from_seconds(1.5)).fraction(), 0.2, 1e-9);   // low half
  EXPECT_NEAR(load.at(SimTime::from_seconds(2.5)).fraction(), 0.8, 1e-9);   // next period
}

TEST(SegmentLoad, NoiseDeterministicPerTimestamp) {
  SegmentLoad load{{LoadSegment{Seconds{10.0}, 0.5, 0.5, 0.0, Seconds{0.0}, 0.1}}, 42};
  const double a = load.at(SimTime::from_seconds(3.0)).fraction();
  const double b = load.at(SimTime::from_seconds(3.0)).fraction();
  EXPECT_DOUBLE_EQ(a, b);  // stateless — same time, same value
  const double c = load.at(SimTime::from_seconds(3.25)).fraction();
  EXPECT_NE(a, c);  // different times differ (with overwhelming probability)
}

TEST(SegmentLoad, MultiSegmentSequencing) {
  SegmentLoad load{{
      LoadSegment{Seconds{5.0}, 0.1, 0.1, 0.0, Seconds{0.0}, 0.0},
      LoadSegment{Seconds{5.0}, 0.9, 0.9, 0.0, Seconds{0.0}, 0.0},
  }};
  EXPECT_NEAR(load.at(SimTime::from_seconds(4.9)).fraction(), 0.1, 1e-9);
  EXPECT_NEAR(load.at(SimTime::from_seconds(5.1)).fraction(), 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(load.total_duration().value(), 10.0);
}

TEST(Profiles, SuddenProfileSteps) {
  const SegmentLoad load = sudden_profile(Seconds{10.0}, Seconds{20.0});
  EXPECT_LT(load.at(SimTime::from_seconds(5.0)).fraction(), 0.1);
  EXPECT_NEAR(load.at(SimTime::from_seconds(15.0)).fraction(), 1.0, 1e-9);
  EXPECT_LT(load.at(SimTime::from_seconds(35.0)).fraction(), 0.1);
}

TEST(Profiles, GradualProfileHolds) {
  const SegmentLoad load = gradual_profile(Seconds{100.0});
  EXPECT_NEAR(load.at(SimTime::from_seconds(1.0)).fraction(), 1.0, 1e-9);
  EXPECT_NEAR(load.at(SimTime::from_seconds(99.0)).fraction(), 1.0, 1e-9);
}

TEST(Profiles, JitterProfileOscillatesAroundMean) {
  const SegmentLoad load = jitter_profile(Seconds{60.0}, 0.5, 0.35, Seconds{2.0});
  double sum = 0.0;
  double lo = 1.0;
  double hi = 0.0;
  for (double t = 0.0; t < 60.0; t += 0.25) {
    const double u = load.at(SimTime::from_seconds(t)).fraction();
    sum += u;
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_NEAR(sum / 240.0, 0.5, 0.05);
  EXPECT_LT(lo, 0.2);
  EXPECT_GT(hi, 0.8);
}

TEST(Profiles, Fig2ProfileCoversAllThreeTypes) {
  const SegmentLoad load = fig2_profile();
  // Idle lead-in, then full load (sudden + gradual), light load, jitter.
  EXPECT_LT(load.at(SimTime::from_seconds(10.0)).fraction(), 0.15);
  EXPECT_GT(load.at(SimTime::from_seconds(60.0)).fraction(), 0.85);
  EXPECT_GT(load.total_duration().value(), 200.0);
}

TEST(SegmentLoadDeath, EmptyScheduleAborts) {
  EXPECT_DEATH(SegmentLoad(std::vector<LoadSegment>{}), "segment");
}

}  // namespace
}  // namespace thermctl::workload
