// RcBatch bit-exactness against per-node RcNetwork stepping.
//
// The batch is a pure layout change: B structurally identical networks in
// structure-of-arrays storage, advanced by one vectorized loop. Its contract
// is *bitwise* agreement with the same call sequence on standalone
// RcNetworks — including the substep-plan cache's recompute conditions and
// the settle()/min_time_constant() interaction that can leave a stale plan.
// Heterogeneous structures must be rejected by matches() so callers fall
// back to per-node stepping.
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "thermal/package_model.hpp"
#include "thermal/rc_batch.hpp"
#include "thermal/rc_network.hpp"

namespace thermctl::thermal {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_EQ(bits(a), bits(b))
#define ASSERT_BITS_EQ(a, b) ASSERT_EQ(bits(a), bits(b))

// The die--heatsink--ambient chain every cluster node simulates, built the
// same way PackageModel wires it.
struct PackageWiring {
  RcNetwork net;
  NodeId die;
  NodeId hs;
  NodeId amb;
  EdgeId die_hs;
  EdgeId conv;
};

std::unique_ptr<PackageWiring> make_package_wiring() {
  const PackageParams p;
  auto w = std::make_unique<PackageWiring>();
  w->die = w->net.add_node("die", p.c_die, Celsius{40.0});
  w->hs = w->net.add_node("heatsink", p.c_heatsink, Celsius{35.0});
  w->amb = w->net.add_fixed_node("ambient", p.ambient);
  w->die_hs = w->net.add_edge(w->die, w->hs, p.r_die_heatsink);
  w->conv = w->net.add_edge(w->hs, w->amb, KelvinPerWatt{0.5});
  return w;
}

TEST(RcBatch, MirrorsTemplateStateAtConstruction) {
  auto tmpl = make_package_wiring();
  tmpl->net.set_power(tmpl->die, Watts{37.5});
  tmpl->net.set_resistance(tmpl->conv, KelvinPerWatt{0.31});
  RcBatch batch{tmpl->net, 4};

  EXPECT_EQ(batch.instance_count(), 4u);
  EXPECT_EQ(batch.rc_node_count(), 3u);
  EXPECT_EQ(batch.edge_count(), 2u);
  EXPECT_EQ(batch.node_name(tmpl->die), "die");
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_BITS_EQ(batch.temperature(b, tmpl->die).value(),
                   tmpl->net.temperature(tmpl->die).value());
    EXPECT_BITS_EQ(batch.power(b, tmpl->die).value(), 37.5);
    EXPECT_BITS_EQ(batch.resistance(b, tmpl->conv).value(),
                   tmpl->net.resistance(tmpl->conv).value());
  }
  EXPECT_TRUE(batch.matches(tmpl->net));
}

TEST(RcBatch, TrajectoriesBitExactAgainstStandaloneNetworks) {
  // Five instances driven with five *different* power/convection schedules,
  // mirrored onto five standalone networks; every temperature must agree
  // bitwise at every step. Schedules include repeated resistances (hitting
  // the set_resistance early-out) and dt changes (plan recompute).
  constexpr std::size_t kInstances = 5;
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, kInstances};
  std::vector<std::unique_ptr<PackageWiring>> solo;
  for (std::size_t b = 0; b < kInstances; ++b) {
    solo.push_back(make_package_wiring());
  }

  Rng rng{20260808};
  const double dts[] = {0.05, 0.05, 0.05, 0.25};  // mostly steady, some jumps
  for (int step = 0; step < 6000; ++step) {
    for (std::size_t b = 0; b < kInstances; ++b) {
      const double power = 5.0 + 90.0 * rng.uniform();
      // Quantized so the same value repeats across steps and the
      // early-out/dirty-bit path is exercised, not just the recompute path.
      const double r_conv = 0.15 + 0.05 * static_cast<double>(rng.below(10));
      batch.set_power(b, tmpl->die, Watts{power});
      batch.set_resistance(b, tmpl->conv, KelvinPerWatt{r_conv});
      solo[b]->net.set_power(solo[b]->die, Watts{power});
      solo[b]->net.set_resistance(solo[b]->conv, KelvinPerWatt{r_conv});
    }
    const Seconds dt{dts[rng.below(4)]};
    batch.step_all(dt);
    for (std::size_t b = 0; b < kInstances; ++b) {
      solo[b]->net.step(dt);
      ASSERT_BITS_EQ(batch.temperature(b, tmpl->die).value(),
                     solo[b]->net.temperature(solo[b]->die).value())
          << "die diverged, instance " << b << " step " << step;
      ASSERT_BITS_EQ(batch.temperature(b, tmpl->hs).value(),
                     solo[b]->net.temperature(solo[b]->hs).value())
          << "heatsink diverged, instance " << b << " step " << step;
    }
  }
}

TEST(RcBatch, HeterogeneousSubstepPlansSplitTheRangeNotTheArithmetic) {
  // Give instances wildly different convection resistances so their smallest
  // time constants — hence substep counts at dt = 2 s — differ. step_all must
  // still match per-instance stepping bitwise: runs split, arithmetic doesn't.
  constexpr std::size_t kInstances = 7;
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, kInstances};
  std::vector<std::unique_ptr<PackageWiring>> solo;
  for (std::size_t b = 0; b < kInstances; ++b) {
    solo.push_back(make_package_wiring());
    const double r_conv = 0.02 * static_cast<double>(b + 1);  // 0.02 .. 0.14
    batch.set_resistance(b, tmpl->conv, KelvinPerWatt{r_conv});
    solo[b]->net.set_resistance(solo[b]->conv, KelvinPerWatt{r_conv});
    batch.set_power(b, tmpl->die, Watts{60.0});
    solo[b]->net.set_power(solo[b]->die, Watts{60.0});
  }
  for (int step = 0; step < 50; ++step) {
    batch.step_all(Seconds{2.0});
    for (std::size_t b = 0; b < kInstances; ++b) {
      solo[b]->net.step(Seconds{2.0});
      ASSERT_BITS_EQ(batch.temperature(b, tmpl->die).value(),
                     solo[b]->net.temperature(solo[b]->die).value())
          << "instance " << b << " step " << step;
    }
    ASSERT_BITS_EQ(batch.min_time_constant(2).value(),
                   solo[2]->net.min_time_constant().value());
  }
}

TEST(RcBatch, StepRangeAdvancesOnlyTheRange) {
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, 3};
  for (std::size_t b = 0; b < 3; ++b) {
    batch.set_power(b, tmpl->die, Watts{80.0});
  }
  const double before = batch.temperature(2, tmpl->die).value();
  batch.step_range(Seconds{0.05}, 0, 2);
  EXPECT_BITS_EQ(batch.temperature(2, tmpl->die).value(), before);
  EXPECT_NE(bits(batch.temperature(0, tmpl->die).value()), bits(before));
}

TEST(RcBatch, SettleAndStalePlanQuirkMatchStandalone) {
  // RcNetwork has a deliberate-looking wart: set_resistance marks the
  // stability bound dirty, but settle()/min_time_constant() clears the bit
  // without refreshing the cached substep plan, so the next step(dt) with an
  // unchanged dt runs on the stale plan. The batch must reproduce exactly
  // this, or trajectories fork after the first settle-then-step sequence.
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, 2};
  auto solo = make_package_wiring();

  auto drive = [&](double power, double r_conv) {
    batch.set_power(1, tmpl->die, Watts{power});
    batch.set_resistance(1, tmpl->conv, KelvinPerWatt{r_conv});
    solo->net.set_power(solo->die, Watts{power});
    solo->net.set_resistance(solo->conv, KelvinPerWatt{r_conv});
  };
  auto check = [&](const char* what) {
    ASSERT_BITS_EQ(batch.temperature(1, tmpl->die).value(),
                   solo->net.temperature(solo->die).value())
        << what;
    ASSERT_BITS_EQ(batch.temperature(1, tmpl->hs).value(),
                   solo->net.temperature(solo->hs).value())
        << what;
  };

  // Prime a plan at dt = 1.0.
  drive(40.0, 0.5);
  batch.step_one(1, Seconds{1.0});
  solo->net.step(Seconds{1.0});
  check("after priming step");

  // Shrink the time constant (more substeps would be needed), then clear the
  // dirty bit via min_time_constant — next step must reuse the stale plan.
  drive(40.0, 0.05);
  ASSERT_BITS_EQ(batch.min_time_constant(1).value(),
                 solo->net.min_time_constant().value());
  batch.step_one(1, Seconds{1.0});
  solo->net.step(Seconds{1.0});
  check("after stale-plan step");

  // And settle() itself must agree bitwise.
  drive(25.0, 0.3);
  batch.settle(1);
  solo->net.settle();
  check("after settle");
}

TEST(RcBatch, MatchesRejectsStructuralDifferences) {
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, 1};

  // Same structure, different state: still a match.
  auto same = make_package_wiring();
  same->net.set_power(same->die, Watts{99.0});
  same->net.set_resistance(same->conv, KelvinPerWatt{0.17});
  same->net.set_temperature(same->die, Celsius{70.0});
  EXPECT_TRUE(batch.matches(same->net));

  // Different capacitance (a beefier heatsink): structural, no match.
  {
    RcNetwork other;
    const PackageParams p;
    const NodeId die = other.add_node("die", p.c_die, Celsius{40.0});
    const NodeId hs = other.add_node("heatsink", JoulesPerKelvin{300.0}, Celsius{35.0});
    const NodeId amb = other.add_fixed_node("ambient", p.ambient);
    other.add_edge(die, hs, p.r_die_heatsink);
    other.add_edge(hs, amb, KelvinPerWatt{0.5});
    EXPECT_FALSE(batch.matches(other));
  }
  // Extra node (e.g. a second die): no match.
  {
    auto other = make_package_wiring();
    other->net.add_node("die2", JoulesPerKelvin{22.0}, Celsius{40.0});
    EXPECT_FALSE(batch.matches(other->net));
  }
  // Same counts, different edge wiring: no match.
  {
    RcNetwork other;
    const PackageParams p;
    const NodeId die = other.add_node("die", p.c_die, Celsius{40.0});
    const NodeId hs = other.add_node("heatsink", p.c_heatsink, Celsius{35.0});
    const NodeId amb = other.add_fixed_node("ambient", p.ambient);
    other.add_edge(die, amb, p.r_die_heatsink);  // die vented straight out
    other.add_edge(hs, amb, KelvinPerWatt{0.5});
    EXPECT_FALSE(batch.matches(other));
  }
  // Fixed/dynamic flip: no match.
  {
    RcNetwork other;
    const PackageParams p;
    const NodeId die = other.add_node("die", p.c_die, Celsius{40.0});
    const NodeId hs = other.add_node("heatsink", p.c_heatsink, Celsius{35.0});
    const NodeId amb = other.add_node("ambient", JoulesPerKelvin{1e6}, p.ambient);
    other.add_edge(die, hs, p.r_die_heatsink);
    other.add_edge(hs, amb, KelvinPerWatt{0.5});
    EXPECT_FALSE(batch.matches(other));
  }
}

TEST(RcBatch, MixedFleetFallsBackPerNodeForTheOddOneOut) {
  // A fleet where one machine has different hardware: the batch carries the
  // homogeneous majority, the odd network steps standalone, and both match
  // their respective per-node references. This is the fallback contract the
  // cluster layer relies on.
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, 2};
  std::vector<std::unique_ptr<PackageWiring>> solo;
  solo.push_back(make_package_wiring());
  solo.push_back(make_package_wiring());

  // The odd machine: extra chassis node between heatsink and ambient.
  RcNetwork odd;
  const PackageParams p;
  const NodeId odie = odd.add_node("die", p.c_die, Celsius{40.0});
  const NodeId ohs = odd.add_node("heatsink", p.c_heatsink, Celsius{35.0});
  const NodeId ochassis = odd.add_node("chassis", JoulesPerKelvin{400.0}, Celsius{30.0});
  const NodeId oamb = odd.add_fixed_node("ambient", p.ambient);
  odd.add_edge(odie, ohs, p.r_die_heatsink);
  odd.add_edge(ohs, ochassis, KelvinPerWatt{0.2});
  odd.add_edge(ochassis, oamb, KelvinPerWatt{0.4});
  ASSERT_FALSE(batch.matches(odd));

  odd.set_power(odie, Watts{55.0});
  for (std::size_t b = 0; b < 2; ++b) {
    batch.set_power(b, tmpl->die, Watts{55.0});
    solo[b]->net.set_power(solo[b]->die, Watts{55.0});
  }
  const double odd_start = odd.temperature(odie).value();
  for (int step = 0; step < 200; ++step) {
    batch.step_all(Seconds{0.05});
    odd.step(Seconds{0.05});
    for (std::size_t b = 0; b < 2; ++b) {
      solo[b]->net.step(Seconds{0.05});
      ASSERT_BITS_EQ(batch.temperature(b, tmpl->die).value(),
                     solo[b]->net.temperature(solo[b]->die).value());
    }
  }
  EXPECT_GT(odd.temperature(odie).value(), odd_start);  // odd one still simulated
}

// The vectorized substep sweeps process instances in SIMD lanes; counts not
// divisible by the vector width leave scalar tail iterations, and step_range
// can start/end mid-register. Every such shape must stay bit-exact against
// per-node stepping. Widths up to 8 doubles (AVX-512) are covered by counts
// 1..13.
class RcBatchTailSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RcBatchTailSweep, OddInstanceCountsStayBitExact) {
  const std::size_t instances = GetParam();
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, instances};
  std::vector<std::unique_ptr<PackageWiring>> solo;
  for (std::size_t b = 0; b < instances; ++b) {
    solo.push_back(make_package_wiring());
    // Distinct per-instance powers so a lane mixup cannot cancel out.
    const double power = 20.0 + 7.0 * static_cast<double>(b);
    batch.set_power(b, tmpl->die, Watts{power});
    solo[b]->net.set_power(solo[b]->die, Watts{power});
  }
  for (int step = 0; step < 400; ++step) {
    batch.step_all(Seconds{0.05});
    for (std::size_t b = 0; b < instances; ++b) {
      solo[b]->net.step(Seconds{0.05});
      ASSERT_BITS_EQ(batch.temperature(b, tmpl->die).value(),
                     solo[b]->net.temperature(solo[b]->die).value())
          << "instance " << b << " of " << instances << " step " << step;
      ASSERT_BITS_EQ(batch.temperature(b, tmpl->hs).value(),
                     solo[b]->net.temperature(solo[b]->hs).value())
          << "instance " << b << " of " << instances << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TailCounts, RcBatchTailSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 13u));

TEST(RcBatch, StepRangeMisalignedBoundsStayBitExact) {
  // Shard boundaries land mid-register: step [0,3), [3,10) and [10,13)
  // separately (as the sharded engine would) and require bitwise agreement
  // with 13 standalone networks stepped with the same dt.
  constexpr std::size_t kInstances = 13;
  auto tmpl = make_package_wiring();
  RcBatch batch{tmpl->net, kInstances};
  std::vector<std::unique_ptr<PackageWiring>> solo;
  for (std::size_t b = 0; b < kInstances; ++b) {
    solo.push_back(make_package_wiring());
    const double power = 15.0 + 5.0 * static_cast<double>(b);
    batch.set_power(b, tmpl->die, Watts{power});
    solo[b]->net.set_power(solo[b]->die, Watts{power});
  }
  const std::size_t bounds[] = {0, 3, 10, 13};
  for (int step = 0; step < 300; ++step) {
    for (std::size_t s = 0; s + 1 < 4; ++s) {
      batch.step_range(Seconds{0.05}, bounds[s], bounds[s + 1]);
    }
    for (std::size_t b = 0; b < kInstances; ++b) {
      solo[b]->net.step(Seconds{0.05});
      ASSERT_BITS_EQ(batch.temperature(b, tmpl->die).value(),
                     solo[b]->net.temperature(solo[b]->die).value())
          << "instance " << b << " step " << step;
    }
  }
}

TEST(RcBatch, MemoryFootprintScalesWithInstances) {
  auto tmpl = make_package_wiring();
  RcBatch small{tmpl->net, 16};
  RcBatch large{tmpl->net, 1024};
  EXPECT_GT(small.memory_bytes(), 0u);
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
  // The hot per-instance state is (K temps + K powers + K flux + 2E conds)
  // doubles = (3*3 + 2*2)*8 = 104 bytes/instance for the package wiring;
  // shared structure amortizes away at scale.
  const std::size_t delta = large.memory_bytes() - small.memory_bytes();
  EXPECT_NEAR(static_cast<double>(delta) / (1024 - 16), 104.0 + 8.0 * 2 + 1.0 + 4.0, 40.0);
}

}  // namespace
}  // namespace thermctl::thermal
