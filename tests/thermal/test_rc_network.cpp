#include "thermal/rc_network.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace thermctl::thermal {
namespace {

using namespace thermctl::literals;

// A single node R-C against a fixed ambient: T(t) = T_amb + P*R*(1 - e^(-t/RC)).
struct SingleNodeRig {
  RcNetwork net;
  NodeId node;
  NodeId amb;
  EdgeId edge;

  SingleNodeRig(double c, double r, double t_amb = 25.0) {
    node = net.add_node("n", JoulesPerKelvin{c}, Celsius{t_amb});
    amb = net.add_fixed_node("amb", Celsius{t_amb});
    edge = net.add_edge(node, amb, KelvinPerWatt{r});
  }
};

TEST(RcNetwork, SteadyStateMatchesAnalyticSolution) {
  SingleNodeRig rig{100.0, 0.5};
  rig.net.set_power(rig.node, 40.0_W);
  rig.net.settle();
  // T_ss = 25 + 40 * 0.5 = 45.
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), 45.0, 1e-4);
}

TEST(RcNetwork, ExponentialRiseMatchesAnalytic) {
  SingleNodeRig rig{100.0, 0.5};  // tau = 50 s
  rig.net.set_power(rig.node, 40.0_W);
  rig.net.step(Seconds{50.0});  // one time constant
  const double expected = 25.0 + 20.0 * (1.0 - std::exp(-1.0));
  // Explicit Euler at tau/4 sub-steps carries a few-percent local error.
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), expected, 0.6);
}

TEST(RcNetwork, CoolsBackToAmbientWhenPowerRemoved) {
  SingleNodeRig rig{50.0, 0.4};
  rig.net.set_power(rig.node, 60.0_W);
  rig.net.settle();
  rig.net.set_power(rig.node, 0.0_W);
  rig.net.step(Seconds{500.0});
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), 25.0, 0.05);
}

TEST(RcNetwork, TemperatureNeverOvershootsSteadyStateFromBelow) {
  SingleNodeRig rig{20.0, 0.3};
  rig.net.set_power(rig.node, 80.0_W);
  const double t_ss = 25.0 + 80.0 * 0.3;
  double prev = 25.0;
  for (int i = 0; i < 400; ++i) {
    rig.net.step(Seconds{0.25});
    const double t = rig.net.temperature(rig.node).value();
    EXPECT_GE(t + 1e-9, prev);  // monotone rise
    EXPECT_LE(t, t_ss + 1e-6);  // no overshoot (first-order system)
    prev = t;
  }
}

TEST(RcNetwork, TwoNodeChainSteadyState) {
  RcNetwork net;
  const NodeId die = net.add_node("die", JoulesPerKelvin{20.0}, 25.0_degC);
  const NodeId hs = net.add_node("hs", JoulesPerKelvin{300.0}, 25.0_degC);
  const NodeId amb = net.add_fixed_node("amb", 25.0_degC);
  net.add_edge(die, hs, KelvinPerWatt{0.12});
  net.add_edge(hs, amb, KelvinPerWatt{0.30});
  net.set_power(die, 50.0_W);
  net.settle();
  // All power flows through both resistances in series.
  EXPECT_NEAR(net.temperature(hs).value(), 25.0 + 50.0 * 0.30, 1e-3);
  EXPECT_NEAR(net.temperature(die).value(), 25.0 + 50.0 * 0.42, 1e-3);
}

TEST(RcNetwork, ResistanceUpdateShiftsEquilibrium) {
  SingleNodeRig rig{50.0, 0.5};
  rig.net.set_power(rig.node, 40.0_W);
  rig.net.settle();
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), 45.0, 1e-3);
  // Fan speeds up: resistance halves, equilibrium drops.
  rig.net.set_resistance(rig.edge, KelvinPerWatt{0.25});
  rig.net.settle();
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), 35.0, 1e-3);
}

TEST(RcNetwork, ResistanceAccessorRoundTrips) {
  SingleNodeRig rig{10.0, 0.5};
  EXPECT_NEAR(rig.net.resistance(rig.edge).value(), 0.5, 1e-12);
  rig.net.set_resistance(rig.edge, KelvinPerWatt{0.125});
  EXPECT_NEAR(rig.net.resistance(rig.edge).value(), 0.125, 1e-12);
}

TEST(RcNetwork, FixedNodeTemperatureIsBoundary) {
  SingleNodeRig rig{50.0, 0.5};
  rig.net.set_power(rig.node, 40.0_W);
  rig.net.step(Seconds{100.0});
  EXPECT_DOUBLE_EQ(rig.net.temperature(rig.amb).value(), 25.0);
  rig.net.set_fixed_temperature(rig.amb, 35.0_degC);
  rig.net.settle();
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), 55.0, 1e-3);
}

TEST(RcNetwork, MinTimeConstantIsSmallestTau) {
  RcNetwork net;
  const NodeId a = net.add_node("a", JoulesPerKelvin{10.0}, 25.0_degC);
  const NodeId amb = net.add_fixed_node("amb", 25.0_degC);
  net.add_edge(a, amb, KelvinPerWatt{0.5});  // tau = 5 s
  EXPECT_NEAR(net.min_time_constant().value(), 5.0, 1e-9);

  const NodeId b = net.add_node("b", JoulesPerKelvin{1.0}, 25.0_degC);
  net.add_edge(b, amb, KelvinPerWatt{0.5});  // tau = 0.5 s
  EXPECT_NEAR(net.min_time_constant().value(), 0.5, 1e-9);
}

TEST(RcNetwork, LargeStepRemainsStable) {
  // Sub-stepping must keep explicit Euler stable even for steps far beyond
  // the smallest time constant.
  SingleNodeRig rig{1.0, 0.1};  // tau = 0.1 s
  rig.net.set_power(rig.node, 50.0_W);
  rig.net.step(Seconds{10.0});  // 100x tau in one call
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), 30.0, 0.05);
}

TEST(RcNetwork, EnergyConservationInClosedPair) {
  // Two dynamic nodes exchanging heat with no boundary: total thermal energy
  // (C*T summed) must be conserved.
  RcNetwork net;
  const NodeId a = net.add_node("a", JoulesPerKelvin{10.0}, 80.0_degC);
  const NodeId b = net.add_node("b", JoulesPerKelvin{30.0}, 20.0_degC);
  net.add_edge(a, b, KelvinPerWatt{0.5});
  const double e0 = 10.0 * 80.0 + 30.0 * 20.0;
  net.step(Seconds{5.0});
  const double e1 =
      10.0 * net.temperature(a).value() + 30.0 * net.temperature(b).value();
  EXPECT_NEAR(e0, e1, 1e-6);
  // And they relax toward the common temperature e0 / (C_a + C_b) = 35.
  net.step(Seconds{500.0});
  EXPECT_NEAR(net.temperature(a).value(), 35.0, 0.01);
  EXPECT_NEAR(net.temperature(b).value(), 35.0, 0.01);
}

TEST(RcNetwork, NodeNamesStored) {
  RcNetwork net;
  const NodeId a = net.add_node("die", JoulesPerKelvin{1.0}, 25.0_degC);
  EXPECT_EQ(net.node_name(a), "die");
  EXPECT_EQ(net.node_count(), 1u);
}

TEST(RcNetworkDeath, RejectsNonPositiveResistance) {
  RcNetwork net;
  const NodeId a = net.add_node("a", JoulesPerKelvin{1.0}, 25.0_degC);
  const NodeId amb = net.add_fixed_node("amb", 25.0_degC);
  EXPECT_DEATH(net.add_edge(a, amb, KelvinPerWatt{0.0}), "positive");
}

TEST(RcNetworkDeath, RejectsPowerIntoFixedNode) {
  RcNetwork net;
  const NodeId amb = net.add_fixed_node("amb", 25.0_degC);
  EXPECT_DEATH(net.set_power(amb, Watts{1.0}), "fixed");
}

TEST(RcNetworkDeath, RejectsSelfEdge) {
  RcNetwork net;
  const NodeId a = net.add_node("a", JoulesPerKelvin{1.0}, 25.0_degC);
  EXPECT_DEATH(net.add_edge(a, a, KelvinPerWatt{1.0}), "self");
}

// Property sweep: steady state is linear in power for a range of (P, R).
class RcSteadyStateSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RcSteadyStateSweep, SteadyStateLinearInPowerAndResistance) {
  const auto [power, resistance] = GetParam();
  SingleNodeRig rig{40.0, resistance};
  rig.net.set_power(rig.node, Watts{power});
  rig.net.settle();
  EXPECT_NEAR(rig.net.temperature(rig.node).value(), 25.0 + power * resistance, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(PowerResistanceGrid, RcSteadyStateSweep,
                         ::testing::Combine(::testing::Values(5.0, 20.0, 65.0, 110.0),
                                            ::testing::Values(0.1, 0.3, 0.6, 1.2)));

}  // namespace
}  // namespace thermctl::thermal
