#include "thermal/package_model.hpp"

#include <gtest/gtest.h>

namespace thermctl::thermal {
namespace {

using namespace thermctl::literals;

TEST(PackageModel, StartsAtAmbient) {
  PackageParams params;
  PackageModel pkg{params};
  EXPECT_NEAR(pkg.die_temperature().value(), params.ambient.value(), 1e-9);
  EXPECT_NEAR(pkg.heatsink_temperature().value(), params.ambient.value(), 1e-9);
}

TEST(PackageModel, SettleMatchesAnalyticSteadyState) {
  PackageModel pkg{PackageParams{}};
  pkg.set_cpu_power(60.0_W);
  pkg.set_airflow(Cfm{16.0});
  pkg.settle();
  EXPECT_NEAR(pkg.die_temperature().value(),
              pkg.steady_state_die(60.0_W, Cfm{16.0}).value(), 1e-3);
}

TEST(PackageModel, MoreAirflowMeansCoolerDie) {
  PackageModel pkg{PackageParams{}};
  pkg.set_cpu_power(60.0_W);
  double prev = 1e9;
  for (double v : {2.0, 8.0, 16.0, 24.0, 32.0}) {
    const double t = pkg.steady_state_die(60.0_W, Cfm{v}).value();
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(PackageModel, DieRespondsFasterThanHeatsink) {
  PackageParams params;
  PackageModel pkg{params};
  pkg.set_airflow(Cfm{10.0});
  pkg.settle();
  pkg.set_cpu_power(65.0_W);
  pkg.step(Seconds{2.0});
  const double die_rise = pkg.die_temperature().value() - params.ambient.value();
  const double hs_rise = pkg.heatsink_temperature().value() - params.ambient.value();
  // After 2 s the die has moved substantially, the heatsink barely.
  EXPECT_GT(die_rise, 4.0 * hs_rise);
  EXPECT_GT(die_rise, 1.0);
}

TEST(PackageModel, SuddenLoadGivesSecondsScaleDieTransient) {
  // §3.1 Type I: the "sudden" behaviour must play out over a few seconds,
  // not milliseconds or minutes.
  PackageModel pkg{PackageParams{}};
  pkg.set_airflow(Cfm{10.0});
  pkg.set_cpu_power(10.0_W);
  pkg.settle();
  const double t0 = pkg.die_temperature().value();
  pkg.set_cpu_power(65.0_W);
  pkg.step(Seconds{5.0});
  const double rise_5s = pkg.die_temperature().value() - t0;
  EXPECT_GT(rise_5s, 3.0);   // clearly visible within 5 s
  EXPECT_LT(rise_5s, 25.0);  // but nowhere near the full equilibrium rise yet
}

TEST(PackageModel, GradualHeatsinkDriftContinuesForMinutes) {
  // §3.1 Type II: after the sudden die jump, temperature keeps climbing
  // gradually as the heatsink mass charges.
  PackageModel pkg{PackageParams{}};
  pkg.set_airflow(Cfm{10.0});
  pkg.set_cpu_power(10.0_W);
  pkg.settle();
  pkg.set_cpu_power(65.0_W);
  pkg.step(Seconds{10.0});
  const double t_10s = pkg.die_temperature().value();
  pkg.step(Seconds{110.0});
  const double t_2min = pkg.die_temperature().value();
  EXPECT_GT(t_2min - t_10s, 2.0);  // still drifting upward after the jump
}

TEST(PackageModel, AmbientShiftPropagates) {
  PackageParams params;
  PackageModel pkg{params};
  pkg.set_cpu_power(40.0_W);
  pkg.set_airflow(Cfm{16.0});
  pkg.settle();
  const double before = pkg.die_temperature().value();
  pkg.set_ambient(params.ambient + CelsiusDelta{10.0});  // rack hot spot
  pkg.settle();
  EXPECT_NEAR(pkg.die_temperature().value(), before + 10.0, 0.01);
}

TEST(PackageModel, AirflowAccessorRoundTrips) {
  PackageModel pkg{PackageParams{}};
  pkg.set_airflow(Cfm{12.5});
  EXPECT_DOUBLE_EQ(pkg.airflow().value(), 12.5);
}

TEST(PackageModel, CpuPowerAccessor) {
  PackageModel pkg{PackageParams{}};
  pkg.set_cpu_power(33.0_W);
  EXPECT_DOUBLE_EQ(pkg.cpu_power().value(), 33.0);
}

TEST(PackageModel, OperatingEnvelopeMatchesPaperPlatform) {
  // The paper's platform idles just below the static curve's Tmin (38 °C)
  // and runs flat-out in the 45–70 °C band depending on fan speed.
  PackageModel pkg{PackageParams{}};
  const double idle = pkg.steady_state_die(Watts{13.0}, Cfm{3.0}).value();
  EXPECT_GT(idle, 30.0);
  EXPECT_LT(idle, 40.0);
  const double burn_fast_fan = pkg.steady_state_die(Watts{62.0}, Cfm{32.0}).value();
  EXPECT_GT(burn_fast_fan, 42.0);
  EXPECT_LT(burn_fast_fan, 55.0);
  const double burn_slow_fan = pkg.steady_state_die(Watts{62.0}, Cfm{3.0}).value();
  EXPECT_GT(burn_slow_fan, 55.0);
  EXPECT_LT(burn_slow_fan, 80.0);
}

}  // namespace
}  // namespace thermctl::thermal
