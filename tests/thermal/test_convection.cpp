#include "thermal/convection.hpp"

#include <gtest/gtest.h>

namespace thermctl::thermal {
namespace {

TEST(Convection, ResistanceDecreasesWithAirflow) {
  ConvectionModel m;
  double prev = m.resistance(Cfm{0.0}).value();
  for (double v = 2.0; v <= 32.0; v += 2.0) {
    const double r = m.resistance(Cfm{v}).value();
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Convection, StillAirMatchesNaturalConductance) {
  ConvectionParams p;
  p.g_natural = 2.0;
  p.r_conduction = KelvinPerWatt{0.1};
  ConvectionModel m{p};
  EXPECT_NEAR(m.still_air_resistance().value(), 0.1 + 0.5, 1e-12);
}

TEST(Convection, ApproachesConductionFloorAtHighAirflow) {
  ConvectionModel m;
  const double floor = m.limit_resistance().value();
  const double r = m.resistance(Cfm{10000.0}).value();
  EXPECT_GT(r, floor);
  EXPECT_NEAR(r, floor, 0.01);
}

TEST(Convection, DiminishingReturns) {
  // The Fig. 7 phenomenon: the 25→50% airflow gain dwarfs the 75→100% gain.
  ConvectionModel m;
  const double r25 = m.resistance(Cfm{8.0}).value();
  const double r50 = m.resistance(Cfm{16.0}).value();
  const double r75 = m.resistance(Cfm{24.0}).value();
  const double r100 = m.resistance(Cfm{32.0}).value();
  EXPECT_GT(r25 - r50, r50 - r75);
  EXPECT_GT(r50 - r75, r75 - r100);
}

TEST(Convection, ExponentControlsShape) {
  ConvectionParams linear;
  linear.exponent = 1.0;
  ConvectionParams sublinear;
  sublinear.exponent = 0.5;
  const double r_lin = ConvectionModel{linear}.resistance(Cfm{16.0}).value();
  const double r_sub = ConvectionModel{sublinear}.resistance(Cfm{16.0}).value();
  // For v > 1, higher exponent gives more conductance → less resistance.
  EXPECT_LT(r_lin, r_sub);
}

TEST(ConvectionDeath, RejectsNegativeAirflow) {
  ConvectionModel m;
  EXPECT_DEATH((void)m.resistance(Cfm{-1.0}), "airflow");
}

TEST(ConvectionDeath, RejectsNonPositiveNaturalConductance) {
  ConvectionParams p;
  p.g_natural = 0.0;
  EXPECT_DEATH(ConvectionModel{p}, "natural");
}

TEST(ConvectionDeath, RejectsAbsurdExponent) {
  ConvectionParams p;
  p.exponent = 3.0;
  EXPECT_DEATH(ConvectionModel{p}, "exponent");
}

}  // namespace
}  // namespace thermctl::thermal
