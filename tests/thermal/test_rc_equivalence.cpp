// Equivalence of the optimized RcNetwork against the seed implementation.
//
// The production solver flattens adjacency into a CSR layout and caches the
// stability bound / sub-step plan; this test pins it against a direct
// re-implementation of the original edge-list solver (alloc-per-step,
// recompute-everything) and requires trajectories to agree to 1e-9 degC —
// the refactor is a layout/caching change, not a numerical one. Exercised
// on the package-model wiring (with fan-like per-step resistance updates)
// and on a randomized 32-node network.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "thermal/package_model.hpp"
#include "thermal/rc_network.hpp"

namespace thermctl::thermal {
namespace {

// Line-for-line port of the seed RcNetwork integrator (pre-CSR): edge-list
// flux accumulation, min time constant recomputed (with allocation) every
// step, no caching anywhere.
class ReferenceRcNetwork {
 public:
  std::size_t add_node(double capacitance, double t0) {
    cap_.push_back(capacitance);
    temp_.push_back(t0);
    power_.push_back(0.0);
    fixed_.push_back(false);
    return cap_.size() - 1;
  }
  std::size_t add_fixed_node(double t) {
    cap_.push_back(0.0);
    temp_.push_back(t);
    power_.push_back(0.0);
    fixed_.push_back(true);
    return cap_.size() - 1;
  }
  std::size_t add_edge(std::size_t a, std::size_t b, double r) {
    ea_.push_back(a);
    eb_.push_back(b);
    g_.push_back(1.0 / r);
    return g_.size() - 1;
  }
  void set_resistance(std::size_t e, double r) { g_[e] = 1.0 / r; }
  void set_power(std::size_t n, double p) { power_[n] = p; }
  void set_fixed_temperature(std::size_t n, double t) { temp_[n] = t; }
  [[nodiscard]] double temperature(std::size_t n) const { return temp_[n]; }

  [[nodiscard]] double min_time_constant() const {
    std::vector<double> conductance(cap_.size(), 0.0);
    for (std::size_t e = 0; e < g_.size(); ++e) {
      conductance[ea_[e]] += g_[e];
      conductance[eb_[e]] += g_[e];
    }
    double min_tau = 1e30;
    for (std::size_t i = 0; i < cap_.size(); ++i) {
      if (!fixed_[i] && conductance[i] > 0.0) {
        min_tau = std::min(min_tau, cap_[i] / conductance[i]);
      }
    }
    return min_tau;
  }

  void step(double dt) {
    const double max_sub = std::max(1e-6, min_time_constant() / 8.0);
    const int substeps = std::max(1, static_cast<int>(std::ceil(dt / max_sub)));
    const double h = dt / substeps;
    for (int s = 0; s < substeps; ++s) {
      euler_substep(h);
    }
  }

 private:
  void euler_substep(double dt) {
    std::vector<double> flux(cap_.size(), 0.0);
    for (std::size_t e = 0; e < g_.size(); ++e) {
      const double q = (temp_[ea_[e]] - temp_[eb_[e]]) * g_[e];
      flux[ea_[e]] -= q;
      flux[eb_[e]] += q;
    }
    for (std::size_t i = 0; i < cap_.size(); ++i) {
      if (!fixed_[i]) {
        temp_[i] += dt * (power_[i] + flux[i]) / cap_[i];
      }
    }
  }

  std::vector<double> cap_;
  std::vector<double> temp_;
  std::vector<double> power_;
  std::vector<bool> fixed_;
  std::vector<std::size_t> ea_;
  std::vector<std::size_t> eb_;
  std::vector<double> g_;
};

TEST(RcEquivalence, PackageModelWiringMatchesReference) {
  // The die--heatsink--ambient chain of PackageParams, with the
  // heatsink-ambient resistance modulated per step the way fan-dependent
  // convection modulates it in a real run.
  const PackageParams p;

  RcNetwork net;
  const NodeId die = net.add_node("die", p.c_die, Celsius{40.0});
  const NodeId hs = net.add_node("heatsink", p.c_heatsink, Celsius{35.0});
  const NodeId amb = net.add_fixed_node("ambient", p.ambient);
  net.add_edge(die, hs, p.r_die_heatsink);
  const EdgeId conv = net.add_edge(hs, amb, KelvinPerWatt{0.5});

  ReferenceRcNetwork ref;
  const std::size_t rdie = ref.add_node(p.c_die.value(), 40.0);
  const std::size_t rhs = ref.add_node(p.c_heatsink.value(), 35.0);
  const std::size_t ramb = ref.add_fixed_node(p.ambient.value());
  ref.add_edge(rdie, rhs, p.r_die_heatsink.value());
  const std::size_t rconv = ref.add_edge(rhs, ramb, 0.5);

  Rng rng{42};
  const double dt = 0.05;
  for (int step = 0; step < 20000; ++step) {
    // Power swings between idle and cpu-burn; convection follows a
    // fan-ramp-like trajectory.
    const double power = 20.0 + 70.0 * rng.uniform();
    const double r_conv = 0.15 + 0.5 * rng.uniform();
    net.set_power(die, Watts{power});
    net.set_resistance(conv, KelvinPerWatt{r_conv});
    ref.set_power(rdie, power);
    ref.set_resistance(rconv, r_conv);

    net.step(Seconds{dt});
    ref.step(dt);

    ASSERT_NEAR(net.temperature(die).value(), ref.temperature(rdie), 1e-9);
    ASSERT_NEAR(net.temperature(hs).value(), ref.temperature(rhs), 1e-9);
  }
}

TEST(RcEquivalence, Randomized32NodeNetworkMatchesReference) {
  Rng rng{20260806};
  constexpr std::size_t kNodes = 32;

  RcNetwork net;
  ReferenceRcNetwork ref;
  std::vector<NodeId> ids;
  std::vector<bool> fixed(kNodes, false);
  for (std::size_t i = 0; i < kNodes; ++i) {
    // A few boundary nodes scattered through the network.
    if (i % 11 == 3) {
      const double t = 20.0 + 10.0 * rng.uniform();
      ids.push_back(net.add_fixed_node("amb" + std::to_string(i), Celsius{t}));
      ref.add_fixed_node(t);
      fixed[i] = true;
    } else {
      const double c = 5.0 + 200.0 * rng.uniform();
      const double t0 = 25.0 + 30.0 * rng.uniform();
      ids.push_back(net.add_node("n" + std::to_string(i), JoulesPerKelvin{c}, Celsius{t0}));
      ref.add_node(c, t0);
    }
  }
  // A connected random graph: chain backbone plus random chords.
  std::vector<EdgeId> edges;
  for (std::size_t i = 1; i < kNodes; ++i) {
    const double r = 0.2 + 2.0 * rng.uniform();
    edges.push_back(net.add_edge(ids[i - 1], ids[i], KelvinPerWatt{r}));
    ref.add_edge(i - 1, i, r);
  }
  for (int k = 0; k < 24; ++k) {
    const std::size_t a = rng.below(kNodes);
    const std::size_t b = rng.below(kNodes);
    if (a == b) {
      continue;
    }
    const double r = 0.2 + 2.0 * rng.uniform();
    edges.push_back(net.add_edge(ids[a], ids[b], KelvinPerWatt{r}));
    ref.add_edge(a, b, r);
  }

  const double dt = 0.05;
  for (int step = 0; step < 4000; ++step) {
    // Mutate a random subset of powers and resistances each step to stress
    // the cache-invalidation paths.
    for (int m = 0; m < 4; ++m) {
      const std::size_t n = rng.below(kNodes);
      if (!fixed[n]) {
        const double p = 50.0 * rng.uniform();
        net.set_power(ids[n], Watts{p});
        ref.set_power(n, p);
      }
      const std::size_t e = rng.below(edges.size());
      const double r = 0.2 + 2.0 * rng.uniform();
      net.set_resistance(edges[e], KelvinPerWatt{r});
      ref.set_resistance(e, r);
    }

    net.step(Seconds{dt});
    ref.step(dt);

    for (std::size_t i = 0; i < kNodes; ++i) {
      ASSERT_NEAR(net.temperature(ids[i]).value(), ref.temperature(i), 1e-9)
          << "node " << i << " diverged at step " << step;
    }
  }
}

TEST(RcEquivalence, MinTimeConstantTracksResistanceChanges) {
  // The cached stability bound must follow set_resistance immediately (a
  // stale cache would show up as a wrong sub-step count, not a crash).
  RcNetwork net;
  const NodeId a = net.add_node("a", JoulesPerKelvin{10.0}, Celsius{30.0});
  const NodeId amb = net.add_fixed_node("amb", Celsius{25.0});
  const EdgeId e = net.add_edge(a, amb, KelvinPerWatt{1.0});
  EXPECT_NEAR(net.min_time_constant().value(), 10.0, 1e-12);
  net.step(Seconds{0.05});
  net.set_resistance(e, KelvinPerWatt{0.1});
  EXPECT_NEAR(net.min_time_constant().value(), 1.0, 1e-12);
  net.step(Seconds{0.05});
  net.set_resistance(e, KelvinPerWatt{10.0});
  EXPECT_NEAR(net.min_time_constant().value(), 100.0, 1e-12);
}

}  // namespace
}  // namespace thermctl::thermal
