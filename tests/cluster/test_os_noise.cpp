// Engine in-band-overhead (OS noise) model tests.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "workload/app.hpp"

namespace thermctl::cluster {
namespace {

NodeParams quiet() {
  NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

double run_compute_job(std::size_t nodes, double per_tick_s, bool barriers = false) {
  Cluster rack{nodes, quiet()};
  EngineConfig cfg;
  cfg.horizon = Seconds{120.0};
  Engine engine{rack, cfg};
  std::vector<workload::Program> progs;
  for (std::size_t i = 0; i < nodes; ++i) {
    workload::Program p;
    p.push_back(workload::compute_phase(24.0));  // 10 s at 2.4 GHz
    if (barriers) {
      p.push_back(workload::barrier_phase());
    }
    progs.push_back(std::move(p));
  }
  workload::ParallelApp app{"t", std::move(progs)};
  std::vector<std::size_t> mapping(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    mapping[i] = i;
    engine.set_inband_overhead(i, Seconds{per_tick_s}, Seconds{0.25});
  }
  engine.attach_app(app, mapping);
  return engine.run().exec_time_s;
}

TEST(OsNoise, ZeroOverheadIsBaseline) {
  EXPECT_NEAR(run_compute_job(1, 0.0), 10.0, 0.1);
}

TEST(OsNoise, StealFractionStretchesCompute) {
  // 25 ms stolen per 250 ms = 10% steal -> 10 s of work takes ~11.1 s.
  EXPECT_NEAR(run_compute_job(1, 0.025), 10.0 / 0.9, 0.15);
}

TEST(OsNoise, MicrosecondTicksAreInvisible) {
  const double noisy = run_compute_job(1, 10e-6);
  EXPECT_NEAR(noisy, 10.0, 0.1);
}

TEST(OsNoise, OneNoisyNodeDragsBarrierJob) {
  // Only node 1 is noisy; with a barrier, the whole job pays its tax.
  Cluster rack{2, quiet()};
  EngineConfig cfg;
  cfg.horizon = Seconds{120.0};
  Engine engine{rack, cfg};
  std::vector<workload::Program> progs(
      2, workload::Program{workload::compute_phase(24.0), workload::barrier_phase()});
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0, 1});
  engine.set_inband_overhead(1, Seconds{0.025}, Seconds{0.25});  // 10% on node 1 only
  const double exec = engine.run().exec_time_s;
  EXPECT_NEAR(exec, 10.0 / 0.9, 0.2);
}

TEST(OsNoiseDeath, OverheadMustFitPeriod) {
  Cluster rack{1, quiet()};
  Engine engine{rack, EngineConfig{}};
  EXPECT_DEATH(engine.set_inband_overhead(0, Seconds{0.5}, Seconds{0.25}), "shorter");
}

TEST(OsNoiseDeath, NodeIndexValidated) {
  Cluster rack{1, quiet()};
  Engine engine{rack, EngineConfig{}};
  EXPECT_DEATH(engine.set_inband_overhead(5, Seconds{0.001}, Seconds{0.25}), "range");
}

}  // namespace
}  // namespace thermctl::cluster
