// Rank stall injection and engine-level load migration.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/load_balancer.hpp"
#include "workload/app.hpp"

namespace thermctl::cluster {
namespace {

NodeParams quiet() {
  NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

TEST(Stall, DelaysCompletionByItsDuration) {
  workload::ParallelApp app{"t", {workload::Program{workload::compute_phase(4.8)}}};
  app.inject_stall(0, Seconds{3.0});
  std::vector<GigaHertz> f{GigaHertz{2.4}};
  double t = 0.0;
  while (!app.done() && t < 30.0) {
    app.step(Seconds{0.05}, f);
    t += 0.05;
  }
  EXPECT_NEAR(app.completion_time().value(), 2.0 + 3.0, 0.1);
}

TEST(Stall, RunsAtStallUtilization) {
  workload::ParallelApp app{"t", {workload::Program{workload::compute_phase(48.0)}}};
  app.inject_stall(0, Seconds{2.0}, Utilization{0.3});
  const auto u = app.step(Seconds{1.0}, {{GigaHertz{2.4}}});
  EXPECT_NEAR(u[0].fraction(), 0.3, 1e-6);  // stalled, not computing
}

TEST(Migration, MovesUtilizationToNewNode) {
  Cluster rack{3, quiet()};
  EngineConfig cfg;
  cfg.horizon = Seconds{40.0};
  Engine engine{rack, cfg};
  std::vector<workload::Program> progs{workload::Program{workload::compute_phase(48.0)}};
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0});

  int fired = 0;
  engine.add_periodic(Seconds{5.0}, [&](SimTime now) {
    if (now.seconds() >= 5.0 && fired == 0) {
      ++fired;
      EXPECT_EQ(engine.node_of_rank(0), 0u);
      EXPECT_TRUE(engine.migrate_rank(0, 2, Seconds{1.0}));
      EXPECT_EQ(engine.node_of_rank(0), 2u);
    }
  });
  const RunResult result = engine.run();
  EXPECT_EQ(engine.migrations(), 1);
  // Node 0 was busy before the 5 s migration, idle after; node 2 the
  // reverse. Sample at t = 2 s and t = 15 s (4 Hz recording).
  EXPECT_GT(result.nodes[0].util[8], 0.9);
  EXPECT_LT(result.nodes[0].util[60], 0.1);
  EXPECT_LT(result.nodes[2].util[8], 0.1);
  EXPECT_GT(result.nodes[2].util[60], 0.9);
  // Completion pays the 1 s stall: 20 s of work + 1 s.
  EXPECT_NEAR(result.exec_time_s, 21.0, 0.5);
}

TEST(Migration, RefusesOccupiedTarget) {
  Cluster rack{2, quiet()};
  Engine engine{rack, EngineConfig{}};
  std::vector<workload::Program> progs(2,
                                       workload::Program{workload::compute_phase(1.0)});
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0, 1});
  EXPECT_FALSE(engine.migrate_rank(0, 1, Seconds{1.0}));
  EXPECT_EQ(engine.node_of_rank(0), 0u);
  EXPECT_EQ(engine.migrations(), 0);
}

TEST(Migration, RankOnNodeLookup) {
  Cluster rack{3, quiet()};
  Engine engine{rack, EngineConfig{}};
  std::vector<workload::Program> progs{workload::Program{workload::compute_phase(1.0)}};
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {1});
  EXPECT_FALSE(engine.rank_on_node(0).has_value());
  ASSERT_TRUE(engine.rank_on_node(1).has_value());
  EXPECT_EQ(engine.rank_on_node(1).value(), 0u);
}

TEST(Balancer, MigratesOffHotNode) {
  Cluster rack{2, quiet()};
  rack.set_inlet_temperature(0, Celsius{42.0});  // node 0 sits in a hot pocket
  rack.node(0).set_utilization(Utilization{0.02});
  rack.node(1).set_utilization(Utilization{0.02});
  rack.settle_all();

  EngineConfig cfg;
  cfg.horizon = Seconds{200.0};
  Engine engine{rack, cfg};
  std::vector<workload::Program> progs{workload::Program{workload::compute_phase(300.0)}};
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0});  // rank starts on the hot node

  core::LoadBalancerConfig bc;
  bc.imbalance_threshold = CelsiusDelta{5.0};
  bc.consistency_evals = 2;
  bc.migration_cost = Seconds{2.0};
  core::ThermalLoadBalancer balancer{rack, engine, bc};
  engine.add_periodic(Seconds{5.0}, [&balancer](SimTime now) { balancer.on_tick(now); });

  engine.run();
  ASSERT_FALSE(balancer.events().empty());
  EXPECT_EQ(balancer.events().front().from_node, 0u);
  EXPECT_EQ(balancer.events().front().to_node, 1u);
  EXPECT_EQ(engine.node_of_rank(0), 1u);
}

TEST(Balancer, HonoursCooldown) {
  Cluster rack{2, quiet()};
  rack.set_inlet_temperature(0, Celsius{42.0});
  rack.set_inlet_temperature(1, Celsius{42.0});  // both hot: it would bounce
  rack.settle_all();

  EngineConfig cfg;
  cfg.horizon = Seconds{120.0};
  Engine engine{rack, cfg};
  std::vector<workload::Program> progs{workload::Program{workload::compute_phase(500.0)}};
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0});

  core::LoadBalancerConfig bc;
  bc.imbalance_threshold = CelsiusDelta{1.0};  // hair trigger
  bc.consistency_evals = 1;
  bc.cooldown = Seconds{60.0};
  core::ThermalLoadBalancer balancer{rack, engine, bc};
  engine.add_periodic(Seconds{5.0}, [&balancer](SimTime now) { balancer.on_tick(now); });

  engine.run();
  // At most 2 migrations fit in 120 s with a 60 s cooldown.
  EXPECT_LE(engine.migrations(), 2);
}

TEST(Balancer, QuietWhenBalanced) {
  Cluster rack{2, quiet()};
  rack.settle_all();
  EngineConfig cfg;
  cfg.horizon = Seconds{60.0};
  Engine engine{rack, cfg};
  std::vector<workload::Program> progs{workload::Program{workload::compute_phase(200.0)}};
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0});

  core::ThermalLoadBalancer balancer{rack, engine};
  engine.add_periodic(Seconds{5.0}, [&balancer](SimTime now) { balancer.on_tick(now); });
  engine.run();
  // A working node is always warmer than an idle spare, but it never crosses
  // the min_hot_temp floor at normal inlet temperature — no migrations.
  EXPECT_EQ(engine.migrations(), 0);
}

}  // namespace
}  // namespace thermctl::cluster
