// Sharded engine determinism: EngineConfig::workers must be behaviourally
// inert. The differential oracle covers full experiment configs; these tests
// pin the property at the engine level with a rig the oracle does not build
// (room coupling + per-node load functions + default sensor noise), across
// divisible and non-divisible node/shard partitions, compared bit-for-bit.

#include <cmath>
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "cluster/engine.hpp"

namespace thermctl::cluster {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_EQ(bits(a), bits(b))

/// A rig that exercises every coupling point the BSP barrier must respect:
/// room inlet feedback (rack power reduced across all nodes each step),
/// per-node synthetic loads out of phase with each other, and the default
/// seeded sensor noise so sample order matters.
RunResult run_rig(std::size_t nodes, int workers) {
  NodeParams params;  // defaults: sensor noise on, per-node seeds
  Cluster cluster{nodes, params};
  RoomModel room{nodes};
  EngineConfig cfg;
  cfg.horizon = Seconds{12.0};
  cfg.workers = workers;
  Engine engine{cluster, cfg};
  engine.attach_room(room);
  for (std::size_t i = 0; i < nodes; ++i) {
    engine.set_node_load_fn(i, [i](SimTime t) {
      const double phase = t.seconds() + static_cast<double>(i);
      return Utilization{0.5 + 0.4 * std::sin(phase)};
    });
  }
  return engine.run();
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t t = 0; t < a.times.size(); ++t) {
    EXPECT_BITS_EQ(a.times[t], b.times[t]) << "t=" << t;
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const NodeSeries& sa = a.nodes[i];
    const NodeSeries& sb = b.nodes[i];
    ASSERT_EQ(sa.die_temp.size(), sb.die_temp.size()) << "node " << i;
    for (std::size_t t = 0; t < sa.die_temp.size(); ++t) {
      EXPECT_BITS_EQ(sa.die_temp[t], sb.die_temp[t]) << "node " << i << " t=" << t;
      EXPECT_BITS_EQ(sa.sensor_temp[t], sb.sensor_temp[t]) << "node " << i << " t=" << t;
      EXPECT_BITS_EQ(sa.duty[t], sb.duty[t]) << "node " << i << " t=" << t;
      EXPECT_BITS_EQ(sa.rpm[t], sb.rpm[t]) << "node " << i << " t=" << t;
      EXPECT_BITS_EQ(sa.power_w[t], sb.power_w[t]) << "node " << i << " t=" << t;
      EXPECT_BITS_EQ(sa.util[t], sb.util[t]) << "node " << i << " t=" << t;
    }
  }
  ASSERT_EQ(a.summaries.size(), b.summaries.size());
  for (std::size_t i = 0; i < a.summaries.size(); ++i) {
    EXPECT_BITS_EQ(a.summaries[i].avg_die_temp, b.summaries[i].avg_die_temp);
    EXPECT_BITS_EQ(a.summaries[i].max_die_temp, b.summaries[i].max_die_temp);
    EXPECT_BITS_EQ(a.summaries[i].energy_j, b.summaries[i].energy_j);
  }
}

TEST(ShardedEngine, ResolvedWorkersClampsToNodesAndHardware) {
  NodeParams params;
  Cluster cluster{5, params};
  {
    Engine engine{cluster, EngineConfig{}};
    EXPECT_EQ(engine.resolved_workers(), 1u);  // default workers = 1
  }
  {
    EngineConfig cfg;
    cfg.workers = 3;
    Engine engine{cluster, cfg};
    EXPECT_EQ(engine.resolved_workers(), 3u);
  }
  {
    EngineConfig cfg;
    cfg.workers = 100;  // more shards than nodes: clamp to node count
    Engine engine{cluster, cfg};
    EXPECT_EQ(engine.resolved_workers(), 5u);
  }
  {
    EngineConfig cfg;
    cfg.workers = 0;  // auto: one per hardware thread, at least one
    Engine engine{cluster, cfg};
    EXPECT_GE(engine.resolved_workers(), 1u);
    EXPECT_LE(engine.resolved_workers(), 5u);
  }
}

TEST(ShardedEngine, BitIdenticalToSerialAcrossPartitions) {
  // 7 nodes: workers 2 -> shards 4+3, 3 -> 3+2+2, 7 -> all singletons, and
  // 16 clamps to 7. None but the last divide evenly.
  const RunResult serial = run_rig(7, 1);
  for (int workers : {2, 3, 7, 16}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_bitwise_equal(serial, run_rig(7, workers));
  }
}

TEST(ShardedEngine, SingleNodeClusterShardsToOneAndMatches) {
  const RunResult serial = run_rig(1, 1);
  expect_bitwise_equal(serial, run_rig(1, 4));
}

}  // namespace
}  // namespace thermctl::cluster
