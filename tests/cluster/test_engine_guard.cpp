// Engine single-thread ownership guard.
//
// A parallel sweep must build one cluster/engine rig per point; sharing a
// rig across runner workers is a determinism bug. The engine binds itself to
// the first thread that runs it and THERMCTL_ASSERTs on a run() from any
// other thread. Also covers the O(1) reverse rank map the guard protects.
#include <thread>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "workload/app.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::cluster {
namespace {

EngineConfig short_config() {
  EngineConfig cfg;
  cfg.horizon = Seconds{1.0};
  return cfg;
}

TEST(EngineThreadGuard, SameThreadMayRunRepeatedly) {
  Cluster rack{2, NodeParams{}};
  Engine engine{rack, short_config()};
  engine.run();
  engine.run();  // still the owning thread: fine
  SUCCEED();
}

TEST(EngineThreadGuard, RunFromAnotherThreadDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Cluster rack{2, NodeParams{}};
  Engine engine{rack, short_config()};
  engine.run();  // binds the engine to this thread
  EXPECT_DEATH(
      {
        std::thread other{[&engine] { engine.run(); }};
        other.join();
      },
      "bound to the thread");
}

TEST(EngineThreadGuard, FreshEngineMayBeRunByAWorkerThread) {
  // Binding happens at first run(), not construction — building rigs on the
  // main thread and running them on pool workers is the supported pattern.
  Cluster rack{2, NodeParams{}};
  Engine engine{rack, short_config()};
  std::thread worker{[&engine] { engine.run(); }};
  worker.join();
  SUCCEED();
}

TEST(EngineRankMap, ReverseMapTracksAttachAndMigration) {
  Cluster rack{4, NodeParams{}};
  Engine engine{rack, short_config()};
  workload::ParallelApp app{
      "pair", {workload::cpu_burn_program(Seconds{60.0}),
               workload::cpu_burn_program(Seconds{60.0})}};
  engine.attach_app(app, {2, 0});

  EXPECT_EQ(engine.rank_on_node(2), std::optional<std::size_t>{0});
  EXPECT_EQ(engine.rank_on_node(0), std::optional<std::size_t>{1});
  EXPECT_FALSE(engine.rank_on_node(1).has_value());
  EXPECT_FALSE(engine.rank_on_node(3).has_value());

  ASSERT_TRUE(engine.migrate_rank(0, 3, Seconds{0.5}));
  EXPECT_FALSE(engine.rank_on_node(2).has_value());
  EXPECT_EQ(engine.rank_on_node(3), std::optional<std::size_t>{0});
  EXPECT_EQ(engine.node_of_rank(0), 3u);

  // Occupied target refused, maps unchanged.
  EXPECT_FALSE(engine.migrate_rank(1, 3, Seconds{0.5}));
  EXPECT_EQ(engine.rank_on_node(0), std::optional<std::size_t>{1});
  EXPECT_EQ(engine.rank_on_node(3), std::optional<std::size_t>{0});
}

}  // namespace
}  // namespace thermctl::cluster
