#include "cluster/node.hpp"

#include <gtest/gtest.h>

namespace thermctl::cluster {
namespace {

NodeParams quiet_sensor_params() {
  NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

TEST(Node, BootsNearAmbientAndProbed) {
  Node node{0, quiet_sensor_params()};
  EXPECT_EQ(node.id(), 0);
  EXPECT_NEAR(node.die_temperature().value(), 28.0, 2.0);
  EXPECT_TRUE(node.fan_driver().probed());
}

TEST(Node, SysfsPlanesExist) {
  Node node{0, quiet_sensor_params()};
  EXPECT_TRUE(node.vfs().exists("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"));
  EXPECT_TRUE(node.vfs().exists("/sys/class/hwmon/hwmon0/temp1_input"));
}

TEST(Node, FullLoadHeatsUp) {
  Node node{0, quiet_sensor_params()};
  node.set_utilization(Utilization{0.02});
  node.settle();
  const double idle = node.die_temperature().value();
  node.set_utilization(Utilization{1.0});
  for (int i = 0; i < 600; ++i) {  // 30 s
    node.step(Seconds{0.05});
  }
  EXPECT_GT(node.die_temperature().value(), idle + 8.0);
}

TEST(Node, SettleAtIdleIsBelowStaticCurveTmin) {
  // The paper platform idles below 38 °C so the static curve sits at PWMmin.
  Node node{0, quiet_sensor_params()};
  node.set_utilization(Utilization{0.02});
  node.settle();
  EXPECT_LT(node.die_temperature().value(), 38.0);
  EXPECT_GT(node.die_temperature().value(), 28.0);
}

TEST(Node, ChipAutoModeDrivesFanWithTemperature) {
  Node node{0, quiet_sensor_params()};
  node.set_utilization(Utilization{0.02});
  node.settle();
  const double idle_duty = node.fan().duty().percent();
  node.set_utilization(Utilization{1.0});
  for (int i = 0; i < 2000; ++i) {  // 100 s
    node.step(Seconds{0.05});
  }
  EXPECT_GT(node.fan().duty().percent(), idle_duty + 5.0);
}

TEST(Node, SensorSampleScheduleIsFourHz) {
  NodeParams p = quiet_sensor_params();
  Node node{0, p};
  EXPECT_EQ(node.sample_schedule().period_us(), 250000);
}

TEST(Node, JiffyAccountingTracksUtilization) {
  Node node{0, quiet_sensor_params()};
  node.set_utilization(Utilization{0.5});
  for (int i = 0; i < 200; ++i) {  // 10 s
    node.step(Seconds{0.05});
  }
  EXPECT_NEAR(static_cast<double>(node.total_jiffies()), 1000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(node.busy_jiffies()), 500.0, 2.0);
}

TEST(Node, ProchotAssertsAboveThresholdAndThrottles) {
  NodeParams p = quiet_sensor_params();
  p.protection.prochot = Celsius{50.0};  // low threshold to force it
  Node node{0, p};
  node.set_utilization(Utilization{1.0});
  // Pin the fan low via BMC override so the node overheats.
  node.bmc().set_fan_override(DutyCycle{1.0});
  for (int i = 0; i < 4000 && !node.prochot_active(); ++i) {
    node.step(Seconds{0.05});
  }
  EXPECT_TRUE(node.prochot_active());
  EXPECT_GE(node.prochot_events(), 1);
  EXPECT_DOUBLE_EQ(node.effective_frequency().value(), 1.0);
  // The OS-visible P-state is untouched.
  EXPECT_DOUBLE_EQ(node.cpu().frequency().value(), 2.4);
}

TEST(Node, BmcFanOverrideWins) {
  Node node{0, quiet_sensor_params()};
  ASSERT_EQ(node.bmc().set_fan_override(DutyCycle{90.0}), sysfs::IpmiCompletion::kOk);
  for (int i = 0; i < 100; ++i) {
    node.step(Seconds{0.05});
  }
  EXPECT_NEAR(node.fan().duty().percent(), 90.0, 0.5);
  // Release the override: chip resumes control.
  ASSERT_EQ(node.bmc().set_fan_override(std::nullopt), sysfs::IpmiCompletion::kOk);
  for (int i = 0; i < 100; ++i) {
    node.step(Seconds{0.05});
  }
  EXPECT_LT(node.fan().duty().percent(), 50.0);
}

TEST(Node, BmcSensorsReportState) {
  Node node{0, quiet_sensor_params()};
  node.sample_sensor();
  sysfs::SensorReading reading;
  ASSERT_EQ(node.bmc().get_sensor_reading(1, reading), sysfs::IpmiCompletion::kOk);
  EXPECT_NEAR(reading.value, node.die_temperature().value(), 1.0);
  ASSERT_EQ(node.bmc().get_sensor_reading(3, reading), sysfs::IpmiCompletion::kOk);
  EXPECT_GT(reading.value, 40.0);  // system power includes base load
}

TEST(Node, CriticalHaltStopsWork) {
  NodeParams p = quiet_sensor_params();
  p.protection.prochot_enabled = false;  // let it run away
  p.protection.critical = Celsius{55.0};
  Node node{0, p};
  node.set_utilization(Utilization{1.0});
  node.bmc().set_fan_override(DutyCycle{1.0});
  for (int i = 0; i < 8000 && !node.halted(); ++i) {
    node.step(Seconds{0.05});
  }
  ASSERT_TRUE(node.halted());
  node.set_utilization(Utilization{1.0});
  EXPECT_DOUBLE_EQ(node.utilization().fraction(), 0.0);  // forced idle
  node.clear_halt();
  node.set_utilization(Utilization{1.0});
  EXPECT_DOUBLE_EQ(node.utilization().fraction(), 1.0);
}

TEST(Node, PowerMeterIntegratesDuringSteps) {
  Node node{0, quiet_sensor_params()};
  node.set_utilization(Utilization{1.0});
  for (int i = 0; i < 200; ++i) {
    node.step(Seconds{0.05});
  }
  EXPECT_GT(node.meter().energy().value(), 500.0);  // ~100 W * 10 s
  EXPECT_GT(node.meter().average_power().value(), 80.0);
  EXPECT_LT(node.meter().average_power().value(), 150.0);
}

}  // namespace
}  // namespace thermctl::cluster
