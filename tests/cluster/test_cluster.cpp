#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace thermctl::cluster {
namespace {

NodeParams quiet() {
  NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

TEST(Cluster, BuildsRequestedNodeCount) {
  Cluster cluster{4, quiet()};
  EXPECT_EQ(cluster.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).id(), static_cast<int>(i));
  }
}

TEST(Cluster, NodesGetDistinctNoiseSeeds) {
  NodeParams p;
  p.sensor.noise_sigma_degc = 0.3;
  Cluster cluster{2, p};
  // Same true temperature, different noise streams.
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    const double a = cluster.node(0).sample_sensor().value();
    const double b = cluster.node(1).sample_sensor().value();
    if (a != b) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 5);
}

TEST(Cluster, IpmiNetworkReachesAllNodes) {
  Cluster cluster{3, quiet()};
  EXPECT_EQ(cluster.ipmi().nodes().size(), 3u);
  sysfs::SensorReading reading;
  for (int n = 0; n < 3; ++n) {
    cluster.node(static_cast<std::size_t>(n)).sample_sensor();
    EXPECT_EQ(cluster.ipmi().get_sensor_reading(n, 1, reading), sysfs::IpmiCompletion::kOk);
  }
}

TEST(Cluster, HotSpotRaisesOneNodesTemperature) {
  Cluster cluster{4, quiet()};
  cluster.set_inlet_temperature(2, Celsius{40.0});
  cluster.settle_all();
  const double hot = cluster.node(2).die_temperature().value();
  const double normal = cluster.node(0).die_temperature().value();
  EXPECT_GT(hot, normal + 8.0);
}

TEST(Cluster, TotalPowerSumsNodes) {
  Cluster cluster{4, quiet()};
  const double total = cluster.total_power().value();
  const double one = cluster.node(0).meter().read().value();
  EXPECT_NEAR(total, 4.0 * one, 8.0);
}

TEST(Cluster, IpmiFanOverridePerNode) {
  Cluster cluster{2, quiet()};
  ASSERT_EQ(cluster.ipmi().set_fan_override(1, DutyCycle{95.0}), sysfs::IpmiCompletion::kOk);
  for (int i = 0; i < 100; ++i) {
    cluster.node(0).step(Seconds{0.05});
    cluster.node(1).step(Seconds{0.05});
  }
  EXPECT_NEAR(cluster.node(1).fan().duty().percent(), 95.0, 0.5);
  EXPECT_LT(cluster.node(0).fan().duty().percent(), 50.0);
}

TEST(ClusterDeath, ZeroNodesAborts) {
  EXPECT_DEATH(Cluster(0, NodeParams{}), "node");
}

}  // namespace
}  // namespace thermctl::cluster
