#include "cluster/engine.hpp"

#include <gtest/gtest.h>

#include "workload/synthetic.hpp"

namespace thermctl::cluster {
namespace {

NodeParams quiet() {
  NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

EngineConfig short_run(double horizon) {
  EngineConfig c;
  c.horizon = Seconds{horizon};
  return c;
}

TEST(Engine, StopsAtHorizonWithoutApp) {
  Cluster cluster{1, quiet()};
  Engine engine{cluster, short_run(5.0)};
  const RunResult result = engine.run();
  EXPECT_FALSE(result.app_completed);
  EXPECT_NEAR(result.exec_time_s, 5.0, 0.1);
  // 4 Hz recording for 5 s plus the t=0 sample.
  EXPECT_NEAR(static_cast<double>(result.times.size()), 21.0, 1.0);
}

TEST(Engine, AppCompletionSetsExecTime) {
  Cluster cluster{2, quiet()};
  Engine engine{cluster, short_run(60.0)};
  std::vector<workload::Program> progs(2, workload::Program{workload::compute_phase(4.8)});
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0, 1});
  const RunResult result = engine.run();
  EXPECT_TRUE(result.app_completed);
  EXPECT_NEAR(result.exec_time_s, 2.0, 0.1);
}

TEST(Engine, AppUtilizationDrivesNodes) {
  Cluster cluster{1, quiet()};
  Engine engine{cluster, short_run(30.0)};
  std::vector<workload::Program> progs{workload::Program{workload::compute_phase(24.0)}};
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0});
  const RunResult result = engine.run();
  // During the 10 s of compute the node ran at full utilization.
  double max_util = 0.0;
  for (double u : result.nodes[0].util) {
    max_util = std::max(max_util, u);
  }
  EXPECT_NEAR(max_util, 1.0, 0.01);
}

TEST(Engine, SegmentLoadDrivesNode) {
  Cluster cluster{1, quiet()};
  Engine engine{cluster, short_run(10.0)};
  const auto load = workload::gradual_profile(Seconds{100.0}, 0.8);
  engine.set_node_load(0, &load);
  const RunResult result = engine.run();
  EXPECT_NEAR(result.nodes[0].util.back(), 0.8, 0.01);
}

TEST(Engine, PeriodicTaskFiresAtRate) {
  Cluster cluster{1, quiet()};
  Engine engine{cluster, short_run(10.0)};
  int fired = 0;
  engine.add_periodic(Seconds{1.0}, [&fired](SimTime) { ++fired; });
  engine.run();
  EXPECT_NEAR(static_cast<double>(fired), 10.0, 1.0);
}

TEST(Engine, TasksSeeFreshSensorSamples) {
  Cluster cluster{1, quiet()};
  Engine engine{cluster, short_run(2.0)};
  bool saw_reading = false;
  engine.add_periodic(Seconds{0.25}, [&](SimTime) {
    const double v = cluster.node(0).sensor_reading().value();
    if (v > 20.0) {
      saw_reading = true;
    }
  });
  engine.run();
  EXPECT_TRUE(saw_reading);
}

TEST(Engine, RecordsAllSeriesFields) {
  Cluster cluster{2, quiet()};
  Engine engine{cluster, short_run(3.0)};
  const RunResult result = engine.run();
  ASSERT_EQ(result.nodes.size(), 2u);
  for (const NodeSeries& n : result.nodes) {
    EXPECT_EQ(n.die_temp.size(), result.times.size());
    EXPECT_EQ(n.duty.size(), result.times.size());
    EXPECT_EQ(n.freq_ghz.size(), result.times.size());
    EXPECT_EQ(n.power_w.size(), result.times.size());
  }
}

TEST(Engine, SummariesPopulated) {
  Cluster cluster{1, quiet()};
  Engine engine{cluster, short_run(5.0)};
  const auto load = workload::gradual_profile(Seconds{100.0});
  engine.set_node_load(0, &load);
  const RunResult result = engine.run();
  const NodeSummary& s = result.summaries[0];
  EXPECT_GT(s.avg_die_temp, 25.0);
  EXPECT_GE(s.max_die_temp, s.avg_die_temp);
  EXPECT_GT(s.avg_power_w, 50.0);
  EXPECT_GT(s.energy_j, 100.0);
}

TEST(Engine, CooldownExtendsRunPastCompletion) {
  Cluster cluster{1, quiet()};
  EngineConfig cfg = short_run(60.0);
  cfg.cooldown = Seconds{5.0};
  Engine engine{cluster, cfg};
  std::vector<workload::Program> progs{workload::Program{workload::compute_phase(2.4)}};
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0});
  const RunResult result = engine.run();
  EXPECT_TRUE(result.app_completed);
  EXPECT_NEAR(result.exec_time_s, 1.0, 0.1);
  EXPECT_GT(result.times.back(), 5.5);  // kept recording through cooldown
}

TEST(Engine, FleetLoadFnDrivesWholeRow) {
  Cluster cluster{3, quiet()};
  Engine engine{cluster, short_run(4.0)};
  engine.set_fleet_load_fn([](SimTime, double* util, const std::uint8_t* halted,
                              std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      util[i] = halted[i] != 0 ? 0.0 : 0.2 + 0.1 * static_cast<double>(i);
    }
  });
  const RunResult result = engine.run();
  ASSERT_EQ(result.nodes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.nodes[i].util.back(), 0.2 + 0.1 * static_cast<double>(i), 1e-12);
  }
}

TEST(Engine, PerNodeLoadFnOverridesFleetLoad) {
  Cluster cluster{2, quiet()};
  Engine engine{cluster, short_run(4.0)};
  engine.set_fleet_load_fn([](SimTime, double* util, const std::uint8_t* halted,
                              std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      util[i] = halted[i] != 0 ? 0.0 : 0.3;
    }
  });
  engine.set_node_load_fn(1, [](SimTime) { return Utilization{0.9}; });
  const RunResult result = engine.run();
  EXPECT_NEAR(result.nodes[0].util.back(), 0.3, 1e-12);
  EXPECT_NEAR(result.nodes[1].util.back(), 0.9, 1e-12);
}

TEST(Engine, RepeatedRunsAppendToRecordedSeries) {
  // Two runs on one engine keep appending to the same recorder — the
  // columnar staging behind MetricsRecorder must drain per result() read and
  // keep accepting rows afterwards.
  Cluster cluster{2, quiet()};
  Engine engine{cluster, short_run(2.0)};
  const std::size_t first = engine.run().times.size();
  const RunResult again = engine.run();
  EXPECT_GT(again.times.size(), first);
  for (const NodeSeries& n : again.nodes) {
    EXPECT_EQ(n.die_temp.size(), again.times.size());
    EXPECT_EQ(n.util.size(), again.times.size());
  }
}

TEST(EngineDeath, TwoRanksOneNodeAborts) {
  Cluster cluster{1, quiet()};
  Engine engine{cluster, short_run(1.0)};
  std::vector<workload::Program> progs(2, workload::Program{workload::compute_phase(1.0)});
  workload::ParallelApp app{"t", std::move(progs)};
  EXPECT_DEATH(engine.attach_app(app, {0, 0}), "one rank");
}

}  // namespace
}  // namespace thermctl::cluster
