// FleetState: the SoA layout must be invisible except for the footprint.
//
// A batched cluster (nodes viewing FleetState arrays) and an unbatched one
// (per-node object graphs) run the same scenario and must agree *bitwise* on
// every observable: die temperatures, sensor readings, fan state, meters,
// jiffy counters. The layout is a performance change, not a semantic one.
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/fleet_state.hpp"

namespace thermctl::cluster {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void expect_nodes_bitwise_equal(Node& a, Node& b) {
  ASSERT_EQ(bits(a.die_temperature().value()), bits(b.die_temperature().value()));
  ASSERT_EQ(bits(a.package().heatsink_temperature().value()),
            bits(b.package().heatsink_temperature().value()));
  ASSERT_EQ(bits(a.sensor_reading().value()), bits(b.sensor_reading().value()));
  ASSERT_EQ(bits(a.fan().rpm().value()), bits(b.fan().rpm().value()));
  ASSERT_EQ(bits(a.fan().duty().percent()), bits(b.fan().duty().percent()));
  ASSERT_EQ(bits(a.meter().energy().value()), bits(b.meter().energy().value()));
  ASSERT_EQ(a.busy_jiffies(), b.busy_jiffies());
  ASSERT_EQ(a.total_jiffies(), b.total_jiffies());
}

TEST(FleetState, BatchedClusterBitIdenticalToPerNodeLayout) {
  constexpr std::size_t kNodes = 6;
  NodeParams params;
  params.seed = 99;
  Cluster batched{kNodes, params, /*batched=*/true};
  Cluster objects{kNodes, params, /*batched=*/false};
  ASSERT_NE(batched.fleet(), nullptr);
  ASSERT_EQ(objects.fleet(), nullptr);

  for (std::size_t i = 0; i < kNodes; ++i) {
    const double util = 0.1 + 0.13 * static_cast<double>(i);
    batched.node(i).set_utilization(Utilization{util});
    objects.node(i).set_utilization(Utilization{util});
  }
  batched.settle_all();
  objects.settle_all();
  for (std::size_t i = 0; i < kNodes; ++i) {
    expect_nodes_bitwise_equal(batched.node(i), objects.node(i));
  }

  // 30 simulated seconds with load changes, inlet hot spots, sampling, and a
  // fan fault — the full per-node surface.
  const Seconds dt{0.05};
  for (int step = 0; step < 600; ++step) {
    if (step == 100) {
      batched.set_inlet_temperature(2, Celsius{38.0});
      objects.set_inlet_temperature(2, Celsius{38.0});
    }
    if (step == 250) {
      batched.node(4).fan().inject_stuck_fault();
      objects.node(4).fan().inject_stuck_fault();
    }
    for (std::size_t i = 0; i < kNodes; ++i) {
      const double util = (step % 120 < 60) ? 0.95 : 0.05;
      batched.node(i).set_utilization(Utilization{util});
      objects.node(i).set_utilization(Utilization{util});
      batched.node(i).step(dt);
      objects.node(i).step(dt);
      if (step % 5 == 0) {
        batched.node(i).sample_sensor();
        objects.node(i).sample_sensor();
      }
    }
    for (std::size_t i = 0; i < kNodes; ++i) {
      expect_nodes_bitwise_equal(batched.node(i), objects.node(i));
    }
  }
  ASSERT_EQ(bits(batched.total_power().value()), bits(objects.total_power().value()));
}

TEST(FleetState, DeviceStateLivesInFleetArrays) {
  constexpr std::size_t kNodes = 3;
  NodeParams params;
  Cluster rack{kNodes, params};
  FleetState* fleet = rack.fleet();
  ASSERT_NE(fleet, nullptr);
  ASSERT_EQ(fleet->size(), kNodes);

  // Writing through the Node API must be visible in the SoA slot and vice
  // versa — the device is a view, not a copy.
  rack.node(1).fan().set_duty(DutyCycle{63.0});
  EXPECT_EQ(*fleet->fan_duty_slot(1), 63.0);
  *fleet->fan_duty_slot(1) = 28.0;
  EXPECT_EQ(rack.node(1).fan().duty().percent(), 28.0);

  rack.node(2).sample_sensor();
  EXPECT_EQ(*fleet->sensor_last_slot(2), rack.node(2).sensor_reading().value());

  // The batch column is the package's temperature storage.
  const auto& wiring = fleet->wiring();
  EXPECT_EQ(bits(fleet->batch().temperature(0, wiring.die).value()),
            bits(rack.node(0).die_temperature().value()));
  EXPECT_TRUE(rack.node(0).package().fleet_backed());
}

TEST(FleetState, MemoryFootprintIsFlatPerNode) {
  NodeParams params;
  FleetState small{params.package, 64};
  FleetState large{params.package, 4096};
  const double small_per_node = static_cast<double>(small.memory_bytes()) / 64.0;
  const double large_per_node = static_cast<double>(large.memory_bytes()) / 4096.0;
  // Shared structure amortizes: per-node bytes must not grow with the fleet,
  // and the hot state is on the order of a hundred bytes, not kilobytes.
  EXPECT_LE(large_per_node, small_per_node * 1.1);
  EXPECT_LT(large_per_node, 512.0);
}

}  // namespace
}  // namespace thermctl::cluster
