#include "cluster/room.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::cluster {
namespace {

TEST(Room, StartsAtSupplyTemperature) {
  RoomModel room{4};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(room.inlet(i).value(), 26.0);
  }
}

TEST(Room, SteadyStateInletIsLinearInRackPower) {
  RoomModel room{2};
  room.settle(Watts{500.0});
  // 26 + 0.006 * 500 = 29.
  EXPECT_NEAR(room.inlet(0).value(), 29.0, 1e-9);
  EXPECT_NEAR(room.steady_state_inlet(0, Watts{1000.0}).value(), 32.0, 1e-9);
}

TEST(Room, OffsetsModelPockets) {
  RoomModel room{3};
  room.set_node_offset(2, CelsiusDelta{6.0});
  room.settle(Watts{500.0});
  EXPECT_NEAR(room.inlet(2).value() - room.inlet(0).value(), 6.0, 1e-9);
}

TEST(Room, MixingFollowsFirstOrderDynamics) {
  RoomParams params;
  params.tau = Seconds{100.0};
  RoomModel room{1, params};
  // Step rack power; after one tau the rise is ~63% of the target.
  for (int i = 0; i < 2000; ++i) {
    room.step(Seconds{0.05}, Watts{500.0});
  }
  const double rise = room.inlet(0).value() - 26.0;
  EXPECT_NEAR(rise, 3.0 * (1.0 - std::exp(-1.0)), 0.03);
}

TEST(Room, StepConvergesExponentiallyToSteadyState) {
  RoomParams params;
  params.tau = Seconds{60.0};
  RoomModel room{2, params};
  room.set_node_offset(1, CelsiusDelta{2.5});
  const Watts load{800.0};
  // k equal steps compose to the analytic first-order response exactly:
  // rise(k·dt) = target · (1 − e^(−k·dt/τ)).
  const double target =
      room.steady_state_inlet(0, load).value() - params.crac_supply.value();
  const Seconds dt{0.25};
  int steps = 0;
  for (int checkpoint : {4, 240, 2400}) {
    for (; steps < checkpoint; ++steps) {
      room.step(dt, load);
    }
    const double elapsed = steps * dt.value();
    const double expected = target * (1.0 - std::exp(-elapsed / params.tau.value()));
    EXPECT_NEAR(room.inlet(0).value() - params.crac_supply.value(), expected, 1e-9)
        << "after " << steps << " steps";
    // Offsets ride on top of the shared mixed rise at every point in time.
    EXPECT_NEAR(room.inlet(1).value() - room.inlet(0).value(), 2.5, 1e-12);
  }
  // 2400 steps = 10 τ: converged to the analytic steady state.
  EXPECT_NEAR(room.inlet(0).value(), room.steady_state_inlet(0, load).value(), 1e-3);
}

TEST(Room, SettleMatchesConvergedStepping) {
  RoomParams params;
  params.tau = Seconds{30.0};
  RoomModel stepped{3, params};
  RoomModel settled{3, params};
  for (std::size_t i = 0; i < 3; ++i) {
    stepped.set_node_offset(i, CelsiusDelta{static_cast<double>(i)});
    settled.set_node_offset(i, CelsiusDelta{static_cast<double>(i)});
  }
  const Watts load{650.0};
  settled.settle(load);
  for (int i = 0; i < 20000; ++i) {  // ~33 τ of 50 ms steps
    stepped.step(Seconds{0.05}, load);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(stepped.inlet(i).value(), settled.inlet(i).value(), 1e-6);
    EXPECT_NEAR(settled.inlet(i).value(), settled.steady_state_inlet(i, load).value(),
                1e-12);
  }
}

// Regression (red under the pre-fix coupling): the engine used to drive the
// room with the *previous* round's DC-only cpu+fan watts while settle() is
// primed with metered wall watts (PSU losses + platform base load included),
// so a settled room decayed toward a target ~40% below its own equilibrium
// as soon as the engine started stepping. Steady state must be a fixed point
// of the engine's room coupling.
TEST(Room, EngineSteadyStateAgreesWithSettle) {
  NodeParams node_params;
  node_params.sensor.noise_sigma_degc = 0.0;
  Cluster rack{2, node_params};
  for (std::size_t i = 0; i < 2; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.settle_all();

  RoomParams room_params;
  room_params.tau = Seconds{20.0};  // horizon spans several τ
  RoomModel room{2, room_params};
  const Watts rack_wall = rack.total_power();
  room.settle(rack_wall);
  const double settled_inlet = room.inlet(0).value();

  EngineConfig cfg;
  cfg.horizon = Seconds{120.0};
  Engine engine{rack, cfg};
  engine.attach_room(room);
  engine.run();  // constant load, no controllers: nothing should move

  EXPECT_NEAR(room.inlet(0).value(), settled_inlet, 0.1);
  EXPECT_NEAR(room.inlet(0).value(),
              room.steady_state_inlet(0, rack.total_power()).value(), 0.1);
}

TEST(Room, EngineFeedbackRaisesInlets) {
  NodeParams node_params;
  node_params.sensor.noise_sigma_degc = 0.0;
  Cluster rack{2, node_params};
  for (std::size_t i = 0; i < 2; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.settle_all();

  RoomParams room_params;
  room_params.tau = Seconds{30.0};  // fast room so the test is short
  RoomModel room{2, room_params};
  room.settle(rack.total_power());

  EngineConfig cfg;
  cfg.horizon = Seconds{120.0};
  Engine engine{rack, cfg};
  engine.attach_room(room);
  const auto burn = workload::gradual_profile(Seconds{200.0});
  engine.set_node_load(0, &burn);
  engine.set_node_load(1, &burn);
  const RunResult result = engine.run();

  // The rack's own dissipation raised the inlets above the CRAC supply...
  EXPECT_GT(room.inlet(0).value(), 26.5);
  // ...and node temperatures reflect the elevated ambient at the end.
  EXPECT_GT(result.nodes[0].die_temp.back(), 50.0);
}

TEST(Room, HotterRoomWithMoreLoad) {
  NodeParams node_params;
  node_params.sensor.noise_sigma_degc = 0.0;
  auto run_with_nodes_busy = [&node_params](int busy) {
    Cluster rack{4, node_params};
    RoomModel room{4};
    EngineConfig cfg;
    cfg.horizon = Seconds{200.0};
    Engine engine{rack, cfg};
    engine.attach_room(room);
    static const auto burn = workload::gradual_profile(Seconds{400.0});
    for (int i = 0; i < busy; ++i) {
      engine.set_node_load(static_cast<std::size_t>(i), &burn);
    }
    engine.run();
    return room.inlet(0).value();
  };
  EXPECT_GT(run_with_nodes_busy(4), run_with_nodes_busy(1) + 0.5);
}

TEST(RoomDeath, SizeMustMatchRack) {
  Cluster rack{2, NodeParams{}};
  Engine engine{rack, EngineConfig{}};
  RoomModel wrong{3};
  EXPECT_DEATH(engine.attach_room(wrong), "sized");
}

TEST(RoomDeath, RejectsZeroNodes) {
  EXPECT_DEATH(RoomModel{0}, "node");
}

}  // namespace
}  // namespace thermctl::cluster
