#include "cluster/room.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::cluster {
namespace {

TEST(Room, StartsAtSupplyTemperature) {
  RoomModel room{4};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(room.inlet(i).value(), 26.0);
  }
}

TEST(Room, SteadyStateInletIsLinearInRackPower) {
  RoomModel room{2};
  room.settle(Watts{500.0});
  // 26 + 0.006 * 500 = 29.
  EXPECT_NEAR(room.inlet(0).value(), 29.0, 1e-9);
  EXPECT_NEAR(room.steady_state_inlet(0, Watts{1000.0}).value(), 32.0, 1e-9);
}

TEST(Room, OffsetsModelPockets) {
  RoomModel room{3};
  room.set_node_offset(2, CelsiusDelta{6.0});
  room.settle(Watts{500.0});
  EXPECT_NEAR(room.inlet(2).value() - room.inlet(0).value(), 6.0, 1e-9);
}

TEST(Room, MixingFollowsFirstOrderDynamics) {
  RoomParams params;
  params.tau = Seconds{100.0};
  RoomModel room{1, params};
  // Step rack power; after one tau the rise is ~63% of the target.
  for (int i = 0; i < 2000; ++i) {
    room.step(Seconds{0.05}, Watts{500.0});
  }
  const double rise = room.inlet(0).value() - 26.0;
  EXPECT_NEAR(rise, 3.0 * (1.0 - std::exp(-1.0)), 0.03);
}

TEST(Room, EngineFeedbackRaisesInlets) {
  NodeParams node_params;
  node_params.sensor.noise_sigma_degc = 0.0;
  Cluster rack{2, node_params};
  for (std::size_t i = 0; i < 2; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.settle_all();

  RoomParams room_params;
  room_params.tau = Seconds{30.0};  // fast room so the test is short
  RoomModel room{2, room_params};
  room.settle(rack.total_power());

  EngineConfig cfg;
  cfg.horizon = Seconds{120.0};
  Engine engine{rack, cfg};
  engine.attach_room(room);
  const auto burn = workload::gradual_profile(Seconds{200.0});
  engine.set_node_load(0, &burn);
  engine.set_node_load(1, &burn);
  const RunResult result = engine.run();

  // The rack's own dissipation raised the inlets above the CRAC supply...
  EXPECT_GT(room.inlet(0).value(), 26.5);
  // ...and node temperatures reflect the elevated ambient at the end.
  EXPECT_GT(result.nodes[0].die_temp.back(), 50.0);
}

TEST(Room, HotterRoomWithMoreLoad) {
  NodeParams node_params;
  node_params.sensor.noise_sigma_degc = 0.0;
  auto run_with_nodes_busy = [&node_params](int busy) {
    Cluster rack{4, node_params};
    RoomModel room{4};
    EngineConfig cfg;
    cfg.horizon = Seconds{200.0};
    Engine engine{rack, cfg};
    engine.attach_room(room);
    static const auto burn = workload::gradual_profile(Seconds{400.0});
    for (int i = 0; i < busy; ++i) {
      engine.set_node_load(static_cast<std::size_t>(i), &burn);
    }
    engine.run();
    return room.inlet(0).value();
  };
  EXPECT_GT(run_with_nodes_busy(4), run_with_nodes_busy(1) + 0.5);
}

TEST(RoomDeath, SizeMustMatchRack) {
  Cluster rack{2, NodeParams{}};
  Engine engine{rack, EngineConfig{}};
  RoomModel wrong{3};
  EXPECT_DEATH(engine.attach_room(wrong), "sized");
}

TEST(RoomDeath, RejectsZeroNodes) {
  EXPECT_DEATH(RoomModel{0}, "node");
}

}  // namespace
}  // namespace thermctl::cluster
