#include "cluster/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace thermctl::cluster {
namespace {

RunResult sample_result() {
  MetricsRecorder rec{2};
  for (int i = 0; i < 4; ++i) {
    const double t = 0.25 * i;
    rec.stamp(t);
    rec.sample(t, 0, 40.0 + i, 40.0 + i, 10.0 * i, 1000.0, 2.4, 100.0, 1.0);
    rec.sample(t, 1, 42.0 + i, 42.0 + i, 5.0 * i, 900.0, 2.2, 95.0, 0.8);
  }
  RunResult r = rec.result();
  r.exec_time_s = 219.0;
  r.summaries[0].avg_power_w = 99.78;
  r.summaries[1].avg_power_w = 97.93;
  r.summaries[0].max_die_temp = 43.0;
  r.summaries[1].max_die_temp = 45.0;
  r.summaries[0].freq_transitions = 101;
  r.summaries[1].freq_transitions = 2;
  r.summaries[0].i2c_retries = 3;
  r.summaries[1].i2c_retries = 2;
  r.summaries[0].i2c_bus_faults = 4;
  r.summaries[1].i2c_exhausted = 1;
  return r;
}

TEST(Metrics, SeriesAlignedWithTimes) {
  const RunResult r = sample_result();
  EXPECT_EQ(r.times.size(), 4u);
  EXPECT_EQ(r.nodes[0].die_temp.size(), 4u);
  EXPECT_EQ(r.nodes[1].duty.size(), 4u);
}

TEST(Metrics, ClusterAverages) {
  const RunResult r = sample_result();
  EXPECT_NEAR(r.avg_power_w(), (99.78 + 97.93) / 2.0, 1e-9);
  EXPECT_NEAR(r.avg_die_temp(), (41.5 + 43.5) / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.max_die_temp(), 45.0);
  EXPECT_EQ(r.total_freq_transitions(), 103u);
}

TEST(Metrics, I2cFaultCountersSumAcrossNodes) {
  const RunResult r = sample_result();
  EXPECT_EQ(r.total_i2c_retries(), 5u);
  EXPECT_EQ(r.total_i2c_bus_faults(), 4u);
  EXPECT_EQ(r.total_i2c_exhausted(), 1u);
}

TEST(Metrics, I2cFaultCountersDefaultToZero) {
  RunResult r;
  r.summaries.resize(2);
  EXPECT_EQ(r.total_i2c_retries(), 0u);
  EXPECT_EQ(r.total_i2c_bus_faults(), 0u);
  EXPECT_EQ(r.total_i2c_exhausted(), 0u);
}

TEST(Metrics, PowerDelayProduct) {
  const RunResult r = sample_result();
  EXPECT_NEAR(r.power_delay_product(), r.avg_power_w() * 219.0, 1e-6);
}

TEST(Metrics, CsvExportShapesCorrectly) {
  const RunResult r = sample_result();
  const std::string path = ::testing::TempDir() + "/thermctl_metrics_test.csv";
  r.write_csv(path, "die_temp");
  std::ifstream in{path};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,node0_die_temp,node1_die_temp");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "0,40,42");
  int rows = 1;
  while (std::getline(in, row)) {
    ++rows;
  }
  EXPECT_EQ(rows, 4);
  std::remove(path.c_str());
}

TEST(Metrics, CsvExportsEveryField) {
  const RunResult r = sample_result();
  for (const char* field :
       {"die_temp", "sensor_temp", "duty", "rpm", "freq_ghz", "power_w", "util", "activity"}) {
    const std::string path =
        ::testing::TempDir() + "/thermctl_metrics_" + field + ".csv";
    r.write_csv(path, field);
    std::ifstream in{path};
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find(field), std::string::npos) << field;
    int rows = 0;
    std::string row;
    while (std::getline(in, row)) {
      ++rows;
    }
    EXPECT_EQ(rows, 4) << field;
    std::remove(path.c_str());
  }
}

TEST(Metrics, CsvRejectsUnknownField) {
  const RunResult r = sample_result();
  const std::string path = ::testing::TempDir() + "/thermctl_metrics_bad.csv";
  EXPECT_DEATH(r.write_csv(path, "nonexistent"), "unknown");
  std::remove(path.c_str());
}

TEST(Metrics, EmptyResultAveragesAreZero) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.avg_power_w(), 0.0);
  EXPECT_DOUBLE_EQ(r.avg_die_temp(), 0.0);
  EXPECT_DOUBLE_EQ(r.max_die_temp(), 0.0);
}

}  // namespace
}  // namespace thermctl::cluster
