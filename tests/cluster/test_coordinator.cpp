#include "cluster/coordinator/coordinator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/coordinator/protocol.hpp"
#include "cluster/coordinator/transport.hpp"
#include "cluster/engine.hpp"
#include "cluster/metrics.hpp"
#include "cluster/room.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::cluster::ctrl {
namespace {

// ---------------------------------------------------------------- transport

TEST(Transport, DeliversFifoPerEndpoint) {
  QueueTransport tp{3};
  for (int k = 0; k < 4; ++k) {
    Message m = make_power_budget(100.0 + k);
    m.from = 0;
    m.to = static_cast<Endpoint>(1 + (k % 2));
    EXPECT_TRUE(tp.send(m));
  }
  Message out;
  ASSERT_TRUE(tp.poll(1, out));
  EXPECT_DOUBLE_EQ(out.budget.watts, 100.0);
  EXPECT_EQ(out.seq, 0u);
  ASSERT_TRUE(tp.poll(1, out));
  EXPECT_DOUBLE_EQ(out.budget.watts, 102.0);
  EXPECT_FALSE(tp.poll(1, out));
  ASSERT_TRUE(tp.poll(2, out));
  EXPECT_DOUBLE_EQ(out.budget.watts, 101.0);
}

TEST(Transport, DropRateLosesMessages) {
  QueueTransportConfig cfg;
  cfg.drop_rate = 0.5;
  cfg.seed = 7;
  QueueTransport tp{2, cfg};
  int delivered = 0;
  for (int k = 0; k < 200; ++k) {
    Message m = make_power_budget(1.0);
    m.from = 0;
    m.to = 1;
    if (tp.send(m)) {
      ++delivered;
    }
  }
  EXPECT_EQ(tp.dropped(), 200u - static_cast<std::uint64_t>(delivered));
  EXPECT_GT(tp.dropped(), 50u);  // ~100 expected at p=0.5
  EXPECT_LT(tp.dropped(), 150u);
  EXPECT_EQ(tp.pending(1), static_cast<std::size_t>(delivered));
}

TEST(Transport, ReorderSwapsAdjacentMessages) {
  QueueTransportConfig cfg;
  cfg.reorder_rate = 1.0 - 1e-9;  // every eligible delivery swaps
  cfg.seed = 3;
  QueueTransport tp{2, cfg};
  for (int k = 0; k < 2; ++k) {
    Message m = make_power_budget(static_cast<double>(k));
    m.from = 0;
    m.to = 1;
    tp.send(m);
  }
  EXPECT_EQ(tp.reordered(), 1u);
  Message out;
  ASSERT_TRUE(tp.poll(1, out));
  EXPECT_DOUBLE_EQ(out.budget.watts, 1.0);  // second message jumped the queue
}

TEST(Transport, SameSeedSameFaults) {
  auto run = [] {
    QueueTransportConfig cfg;
    cfg.drop_rate = 0.3;
    cfg.reorder_rate = 0.3;
    cfg.seed = 42;
    QueueTransport tp{2, cfg};
    std::vector<double> got;
    for (int k = 0; k < 100; ++k) {
      Message m = make_power_budget(static_cast<double>(k));
      m.from = 0;
      m.to = 1;
      tp.send(m);
    }
    Message out;
    while (tp.poll(1, out)) {
      got.push_back(out.budget.watts);
    }
    return got;
  };
  EXPECT_EQ(run(), run());
}

TEST(TransportDeath, RejectsUnknownEndpoint) {
  QueueTransport tp{2};
  Message m = make_power_budget(1.0);
  m.from = 0;
  m.to = 5;
  EXPECT_DEATH(tp.send(m), "unknown endpoint");
}

// ------------------------------------------------------------- plane basics

PlaneConfig quiet_plane() {
  PlaneConfig cfg;
  cfg.period = Seconds{1.0};
  cfg.stall_timeout = Seconds{3.0};
  return cfg;
}

NodeParams quiet_node() {
  NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

EngineConfig horizon(double seconds) {
  EngineConfig cfg;
  cfg.horizon = Seconds{seconds};
  return cfg;
}

// Full-rate load held flat for the whole run.
const workload::SegmentLoad& busy_load() {
  static const workload::SegmentLoad load =
      workload::sudden_profile(Seconds{0.0}, Seconds{600.0}, 0.95);
  return load;
}

TEST(Plane, MembershipConvergesAndTelemetryFlows) {
  Cluster rack{4, quiet_node()};
  ControlPlane plane{rack, quiet_plane()};

  Engine engine{rack, horizon(10.0)};
  engine.attach_plane(plane);
  engine.run();

  EXPECT_EQ(plane.rack_count(), 1u);
  EXPECT_EQ(plane.rack(0).member_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(plane.agent(i).joined()) << "node " << i;
    EXPECT_FALSE(plane.agent(i).autonomous()) << "node " << i;
  }
  const PlaneStats& stats = plane.stats();
  EXPECT_EQ(stats.rounds, 11u);  // phase-0 round at the first step, then 1 Hz
  EXPECT_GE(stats.telemetry_received, 4u * 8u);  // every round after joining
  EXPECT_GT(stats.budgets_received, 0u);         // heartbeats flowing
  EXPECT_GT(plane.rack(0).reported_power_w(), 0.0);
}

TEST(Plane, NodesSplitAcrossRacks) {
  Cluster rack{5, quiet_node()};
  PlaneConfig cfg = quiet_plane();
  cfg.nodes_per_rack = 2;
  ControlPlane plane{rack, cfg};
  EXPECT_EQ(plane.rack_count(), 3u);

  Engine engine{rack, horizon(8.0)};
  engine.attach_plane(plane);
  engine.run();
  EXPECT_EQ(plane.rack(0).member_count(), 2u);
  EXPECT_EQ(plane.rack(1).member_count(), 2u);
  EXPECT_EQ(plane.rack(2).member_count(), 1u);
}

TEST(Plane, RackBudgetCapsAggregatePower) {
  Cluster rack{4, quiet_node()};
  for (std::size_t i = 0; i < 4; ++i) {
    rack.node(i).set_utilization(Utilization{0.95});
  }
  rack.settle_all();
  const double uncapped_w = rack.total_power().value();

  PlaneConfig cfg = quiet_plane();
  cfg.rack_budget_w = 0.7 * uncapped_w;
  ControlPlane plane{rack, cfg};

  Engine engine{rack, horizon(120.0)};
  engine.attach_plane(plane);
  for (std::size_t i = 0; i < 4; ++i) {
    engine.set_node_load(i, &busy_load());
  }
  engine.run();

  // The plane stepped p-states down until the rack fit its budget.
  EXPECT_LE(rack.total_power().value(), cfg.rack_budget_w * 1.05);
  EXPECT_GT(plane.stats().caps_lowered, 0u);
  EXPECT_GT(plane.stats().rack_over_budget_rounds, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(plane.agent(i).cap_index(), 0u) << "node " << i;
  }
}

TEST(Plane, BudgetReleaseRestoresFullFrequency) {
  Cluster rack{2, quiet_node()};
  for (std::size_t i = 0; i < 2; ++i) {
    rack.node(i).set_utilization(Utilization{0.95});
  }
  rack.settle_all();
  const long full_khz = rack.node(0).cpufreq().cur_khz();

  PlaneConfig cfg = quiet_plane();
  cfg.rack_budget_w = 0.6 * rack.total_power().value();
  ControlPlane plane{rack, cfg};

  Engine engine{rack, horizon(120.0)};
  engine.attach_plane(plane);
  engine.set_node_load(0, &busy_load());
  engine.set_node_load(1, &busy_load());
  // Mid-run the room lifts the cap; feed the release through the real
  // message path (the rack coordinator's endpoint is 2 for a 2-node rack).
  bool capped_midway = false;
  engine.add_periodic(Seconds{60.0}, [&](SimTime now) {
    if (now.seconds() < 100.0) {
      capped_midway = plane.agent(0).cap_index() > 0;
      Message release = make_power_budget(0.0);
      release.from = 3;  // room endpoint
      release.to = 2;    // rack coordinator
      plane.transport().send(release);
    }
  });
  engine.run();

  EXPECT_TRUE(capped_midway);  // the budget did bite before the release
  EXPECT_EQ(plane.agent(0).cap_index(), 0u);
  EXPECT_GT(plane.stats().caps_released, 0u);
  EXPECT_EQ(rack.node(0).cpufreq().cur_khz(), full_khz);
}

TEST(Plane, CoordinatorStallTriggersFailsafeAndRejoin) {
  Cluster rack{2, quiet_node()};
  PlaneConfig cfg = quiet_plane();
  cfg.rack_budget_w = 50.0;  // aggressive: nodes get capped early
  ControlPlane plane{rack, cfg};

  Engine engine{rack, horizon(60.0)};
  engine.attach_plane(plane);
  engine.set_node_load(0, &busy_load());
  engine.set_node_load(1, &busy_load());

  // Timeline: stall the rack coordinator at 20 s, observe the failsafe
  // around 30 s, resume at 40 s, expect rejoin by the end.
  bool was_capped = false;
  bool stalled = false;
  bool probed = false;
  bool resumed = false;
  bool failsafed_midrun = false;
  bool cap_released_midrun = false;
  engine.add_periodic(Seconds{1.0}, [&](SimTime now) {
    const double t = now.seconds();
    if (t < 19.5) {
      was_capped = was_capped || plane.agent(0).cap_index() > 0;
    } else if (!stalled) {
      stalled = true;
      plane.stall_rack(0);
    } else if (t > 29.5 && !probed) {
      probed = true;
      failsafed_midrun = plane.agent(0).autonomous();
      cap_released_midrun = plane.agent(0).cap_index() == 0;
    } else if (t > 39.5 && !resumed) {
      resumed = true;
      plane.resume_rack(0);
    }
  });
  engine.run();

  EXPECT_TRUE(was_capped);           // budget bit before the stall
  EXPECT_TRUE(failsafed_midrun);     // stall > timeout → autonomous
  EXPECT_TRUE(cap_released_midrun);  // failsafe released the cap
  EXPECT_GE(plane.stats().failsafe_entries, 2u);
  EXPECT_GE(plane.stats().failsafe_exits, 2u);
  EXPECT_TRUE(plane.agent(0).joined());  // rejoined after resume
  EXPECT_FALSE(plane.agent(0).autonomous());
}

TEST(Plane, PolicyBroadcastReachesEveryNode) {
  Cluster rack{3, quiet_node()};
  ControlPlane plane{rack, quiet_plane()};
  std::vector<int> applied(3, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    plane.set_policy_sink(i, [&applied, i](int pp) { applied[i] = pp; });
  }
  plane.broadcast_policy(25);

  Engine engine{rack, horizon(10.0)};
  engine.attach_plane(plane);
  engine.run();

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(applied[i], 25) << "node " << i;
  }
  EXPECT_EQ(plane.stats().policy_updates_applied, 3u);
}

TEST(Plane, PassiveModeNeverActuates) {
  Cluster rack{2, quiet_node()};
  PlaneConfig cfg = quiet_plane();
  cfg.passive = true;
  cfg.rack_budget_w = 10.0;  // far below draw: active mode would cap hard
  ControlPlane plane{rack, cfg};
  int applied = 0;
  plane.set_policy_sink(0, [&applied](int) { ++applied; });
  plane.broadcast_policy(10);

  Engine engine{rack, horizon(30.0)};
  engine.attach_plane(plane);
  engine.set_node_load(0, &busy_load());
  engine.set_node_load(1, &busy_load());
  engine.run();

  // Full message flow...
  EXPECT_GT(plane.stats().telemetry_received, 0u);
  EXPECT_GT(plane.stats().budgets_received, 0u);
  EXPECT_TRUE(plane.agent(0).joined());
  // ...but zero actuation.
  EXPECT_EQ(plane.stats().caps_lowered, 0u);
  EXPECT_EQ(plane.stats().policy_updates_applied, 0u);
  EXPECT_EQ(applied, 0);
  EXPECT_EQ(plane.agent(0).cap_index(), 0u);
}

TEST(Plane, PassiveAttachedIsBitIdenticalToDetached) {
  auto run = [](bool attach) {
    Cluster rack{3, quiet_node()};
    RoomModel room{3};
    room.settle(rack.total_power());
    PlaneConfig cfg;
    cfg.passive = true;
    cfg.rack_budget_w = 20.0;
    Engine engine{rack, horizon(60.0)};
    engine.attach_room(room);
    static const auto burn = workload::gradual_profile(Seconds{120.0});
    engine.set_node_load(0, &burn);
    engine.set_node_load(1, &burn);
    ControlPlane plane{rack, cfg, &room};
    if (attach) {
      engine.attach_plane(plane);
    }
    return engine.run();
  };
  const RunResult with = run(true);
  const RunResult without = run(false);
  ASSERT_EQ(with.nodes.size(), without.nodes.size());
  for (std::size_t i = 0; i < with.nodes.size(); ++i) {
    ASSERT_EQ(with.nodes[i].die_temp.size(), without.nodes[i].die_temp.size());
    for (std::size_t k = 0; k < with.nodes[i].die_temp.size(); ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(with.nodes[i].die_temp[k]),
                std::bit_cast<std::uint64_t>(without.nodes[i].die_temp[k]))
          << "node " << i << " sample " << k;
    }
  }
}

TEST(Plane, RoomCoordinatorTightensBudgetsOnInletRise) {
  Cluster rack{2, quiet_node()};
  for (std::size_t i = 0; i < 2; ++i) {
    rack.node(i).set_utilization(Utilization{0.95});
  }
  rack.settle_all();

  RoomParams room_params;
  room_params.tau = Seconds{10.0};  // fast room: the rise shows up in-run
  RoomModel room{2, room_params};

  PlaneConfig cfg = quiet_plane();
  cfg.room_budget_w = rack.total_power().value();  // generous until it warms
  cfg.max_inlet_rise_c = 0.5;                      // tight operator cap
  ControlPlane plane{rack, cfg, &room};

  Engine engine{rack, horizon(90.0)};
  engine.attach_room(room);
  engine.attach_plane(plane);
  engine.set_node_load(0, &busy_load());
  engine.set_node_load(1, &busy_load());
  engine.run();

  // The room ran hotter than the 0.5 degC rise cap, so budgets tightened
  // below the configured total and the agents got capped.
  EXPECT_GT(room.mixed_rise().value(), 0.5);
  EXPECT_LT(plane.room_coordinator().last_scale(), 1.0);
  EXPECT_GT(plane.stats().caps_lowered, 0u);
}

TEST(Plane, SurvivesLossyTransport) {
  Cluster rack{3, quiet_node()};
  PlaneConfig cfg = quiet_plane();
  cfg.rack_budget_w = 120.0;
  cfg.transport.drop_rate = 0.3;
  cfg.transport.reorder_rate = 0.2;
  cfg.transport.seed = 99;
  ControlPlane plane{rack, cfg};

  Engine engine{rack, horizon(60.0)};
  engine.attach_plane(plane);
  for (std::size_t i = 0; i < 3; ++i) {
    engine.set_node_load(i, &busy_load());
  }
  engine.run();

  // Losses happened, and the plane still converged to full membership (lost
  // joins are retried with backoff; 30% heartbeat loss can't starve a
  // 3-round stall timeout for 60 rounds).
  EXPECT_GT(plane.transport().dropped(), 0u);
  EXPECT_GT(plane.transport().reordered(), 0u);
  EXPECT_EQ(plane.rack(0).member_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(plane.agent(i).joined()) << "node " << i;
  }
}

TEST(PlaneDeath, StallTimeoutMustExceedPeriod) {
  Cluster rack{1, quiet_node()};
  PlaneConfig cfg;
  cfg.period = Seconds{2.0};
  cfg.stall_timeout = Seconds{1.0};
  EXPECT_DEATH((ControlPlane{rack, cfg}), "stall timeout");
}

}  // namespace
}  // namespace thermctl::cluster::ctrl
