#include "core/two_level_window.hpp"

#include <gtest/gtest.h>

namespace thermctl::core {
namespace {

TEST(TwoLevelWindow, RoundCompletesEveryL1SizeSamples) {
  TwoLevelWindow w;
  EXPECT_FALSE(w.add_sample(Celsius{40.0}).has_value());
  EXPECT_FALSE(w.add_sample(Celsius{40.0}).has_value());
  EXPECT_FALSE(w.add_sample(Celsius{40.0}).has_value());
  EXPECT_TRUE(w.add_sample(Celsius{40.0}).has_value());
  // Level one cleared; next round starts fresh.
  EXPECT_EQ(w.level1_fill(), 0u);
}

TEST(TwoLevelWindow, Level1DeltaIsSumDifference) {
  TwoLevelWindow w;
  w.add_sample(Celsius{40.0});
  w.add_sample(Celsius{40.5});
  w.add_sample(Celsius{41.0});
  const auto round = w.add_sample(Celsius{41.5});
  ASSERT_TRUE(round.has_value());
  // (41.0 + 41.5) - (40.0 + 40.5) = 2.0
  EXPECT_NEAR(round->level1_delta.value(), 2.0, 1e-12);
  EXPECT_NEAR(round->level1_average.value(), 40.75, 1e-12);
}

TEST(TwoLevelWindow, ConstantTemperatureZeroDelta) {
  TwoLevelWindow w;
  for (int i = 0; i < 3; ++i) {
    w.add_sample(Celsius{50.0});
  }
  const auto round = w.add_sample(Celsius{50.0});
  ASSERT_TRUE(round.has_value());
  EXPECT_DOUBLE_EQ(round->level1_delta.value(), 0.0);
}

TEST(TwoLevelWindow, SingleSampleSpikeIsDamped) {
  // Type III jitter: one outlier sample contributes only once to a sum of
  // two, so the delta stays below the outlier's own magnitude.
  TwoLevelWindow w;
  w.add_sample(Celsius{50.0});
  w.add_sample(Celsius{50.0});
  w.add_sample(Celsius{52.0});  // spike
  const auto round = w.add_sample(Celsius{50.0});
  ASSERT_TRUE(round.has_value());
  EXPECT_NEAR(round->level1_delta.value(), 2.0, 1e-12);
  // Compare to a sustained rise of the same per-sample magnitude, which
  // scores twice as high:
  TwoLevelWindow w2;
  w2.add_sample(Celsius{50.0});
  w2.add_sample(Celsius{50.0});
  w2.add_sample(Celsius{52.0});
  const auto round2 = w2.add_sample(Celsius{52.0});
  EXPECT_NEAR(round2->level1_delta.value(), 4.0, 1e-12);
}

TEST(TwoLevelWindow, AlternatingJitterCancels) {
  TwoLevelWindow w;
  w.add_sample(Celsius{50.0});
  w.add_sample(Celsius{51.0});
  w.add_sample(Celsius{50.0});
  const auto round = w.add_sample(Celsius{51.0});
  ASSERT_TRUE(round.has_value());
  EXPECT_DOUBLE_EQ(round->level1_delta.value(), 0.0);
}

TEST(TwoLevelWindow, Level2NotValidUntilTwoRounds) {
  TwoLevelWindow w;
  for (int i = 0; i < 3; ++i) {
    w.add_sample(Celsius{40.0});
  }
  const auto first = w.add_sample(Celsius{40.0});
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->level2_valid);

  for (int i = 0; i < 3; ++i) {
    w.add_sample(Celsius{41.0});
  }
  const auto second = w.add_sample(Celsius{41.0});
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->level2_valid);
  EXPECT_NEAR(second->level2_delta.value(), 1.0, 1e-12);
}

TEST(TwoLevelWindow, Level2TracksGradualTrendAcrossRounds) {
  // A slow drift of +0.1 °C per sample is nearly invisible to Δt_L1
  // (0.2 per round) but accumulates to Δt_L2 ≈ 1.6 across the 5-round FIFO.
  TwoLevelWindow w;
  double t = 40.0;
  CelsiusDelta last_l1{0.0};
  CelsiusDelta last_l2{0.0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      const auto r = w.add_sample(Celsius{t});
      if (r.has_value()) {
        last_l1 = r->level1_delta;
        last_l2 = r->level2_delta;
      }
      t += 0.1;
    }
  }
  EXPECT_NEAR(last_l1.value(), 0.4, 1e-9);
  EXPECT_NEAR(last_l2.value(), 1.6, 1e-9);
  EXPECT_GT(last_l2.value(), 3.0 * last_l1.value());
}

TEST(TwoLevelWindow, FifoEvictsOldestRound) {
  WindowConfig cfg;
  cfg.level2_size = 2;
  TwoLevelWindow w{cfg};
  auto push_round = [&w](double temp) {
    std::optional<WindowRound> r;
    for (int i = 0; i < 4; ++i) {
      r = w.add_sample(Celsius{temp});
    }
    return *r;
  };
  push_round(40.0);
  push_round(45.0);
  const WindowRound r = push_round(50.0);
  // FIFO holds {45, 50}: delta = 5, not 10.
  EXPECT_NEAR(r.level2_delta.value(), 5.0, 1e-12);
  EXPECT_NEAR(w.level2_front().value(), 45.0, 1e-12);
  EXPECT_NEAR(w.level2_rear().value(), 50.0, 1e-12);
}

TEST(TwoLevelWindow, ResetClearsBothLevels) {
  TwoLevelWindow w;
  for (int i = 0; i < 9; ++i) {
    w.add_sample(Celsius{40.0});
  }
  w.reset();
  EXPECT_EQ(w.level1_fill(), 0u);
  EXPECT_EQ(w.level2_fill(), 0u);
}

TEST(TwoLevelWindow, PaperTimingFourHzGivesOneSecondRounds) {
  // 4 samples/s with a 4-entry level-one window = 1 round per second
  // (§3.2.1's worked example).
  TwoLevelWindow w;
  int rounds = 0;
  for (int sample = 0; sample < 4 * 10; ++sample) {  // 10 s at 4 Hz
    if (w.add_sample(Celsius{40.0}).has_value()) {
      ++rounds;
    }
  }
  EXPECT_EQ(rounds, 10);
}

TEST(TwoLevelWindowDeath, OddLevel1SizeAborts) {
  WindowConfig cfg;
  cfg.level1_size = 3;
  EXPECT_DEATH(TwoLevelWindow{cfg}, "even");
}

TEST(TwoLevelWindowDeath, TinyLevel2Aborts) {
  WindowConfig cfg;
  cfg.level2_size = 1;
  EXPECT_DEATH(TwoLevelWindow{cfg}, "level-two");
}

// Sweep window geometries: a linear ramp of rate r gives
// Δt_L1 = r * (size/2)^2 exactly, for any even size.
class WindowGeometrySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowGeometrySweep, RampDeltaMatchesClosedForm) {
  const std::size_t size = GetParam();
  WindowConfig cfg;
  cfg.level1_size = size;
  TwoLevelWindow w{cfg};
  const double rate = 0.5;
  std::optional<WindowRound> round;
  for (std::size_t i = 0; i < size; ++i) {
    round = w.add_sample(Celsius{40.0 + rate * static_cast<double>(i)});
  }
  ASSERT_TRUE(round.has_value());
  const double half = static_cast<double>(size) / 2.0;
  EXPECT_NEAR(round->level1_delta.value(), rate * half * half, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(EvenSizes, WindowGeometrySweep,
                         ::testing::Values(2u, 4u, 6u, 8u, 12u, 16u));

TEST(TwoLevelWindow, BindStateCarriesContentsAndStaysBitIdentical) {
  // Fill a window mid-round with one complete round already in the FIFO,
  // rebind its hot state onto external SoA-style slots (the ControlBank
  // path), and keep sampling: every subsequent round must agree bitwise
  // with a never-rebound reference window fed the same sequence.
  TwoLevelWindow bound;
  TwoLevelWindow reference;
  auto feed_both = [&](double t) {
    const auto a = bound.add_sample(Celsius{t});
    const auto b = reference.add_sample(Celsius{t});
    EXPECT_EQ(a.has_value(), b.has_value());
    if (a.has_value() && b.has_value()) {
      EXPECT_EQ(a->level1_delta.value(), b->level1_delta.value());
      EXPECT_EQ(a->level2_delta.value(), b->level2_delta.value());
      EXPECT_EQ(a->level1_average.value(), b->level1_average.value());
      EXPECT_EQ(a->level2_valid, b->level2_valid);
    }
  };
  for (int i = 0; i < 6; ++i) {  // one full round + 2 samples in flight
    feed_both(40.0 + 0.3 * i);
  }
  ASSERT_EQ(bound.level1_fill(), 2u);
  ASSERT_EQ(bound.level2_fill(), 1u);

  std::vector<double> level1(bound.config().level1_size);
  std::vector<double> level2(bound.config().level2_size);
  std::size_t fill = 0;
  std::size_t head = 0;
  std::size_t count = 0;
  WindowSlots slots;
  slots.level1 = level1.data();
  slots.level2 = level2.data();
  slots.level1_fill = &fill;
  slots.level2_head = &head;
  slots.level2_count = &count;
  bound.bind_state(slots);

  // Contents carried over into the external slots...
  EXPECT_EQ(fill, 2u);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(bound.level2_front().value(), reference.level2_front().value());
  // ...and behaviour is unchanged through rounds, FIFO wraps and a reset.
  for (int i = 0; i < 30; ++i) {
    feed_both(45.0 - 0.2 * i);
  }
  bound.reset();
  reference.reset();
  EXPECT_EQ(fill, 0u);
  for (int i = 0; i < 12; ++i) {
    feed_both(50.0 + 0.5 * i);
  }
}

TEST(TwoLevelWindow, StaggerShortensOnlyTheNextRound) {
  TwoLevelWindow w;  // level1_size = 4
  w.stagger(3);      // next round closes after a single sample
  const auto first = w.add_sample(Celsius{48.0});
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->level1_average.value(), 48.0);
  // Rounds return to full length afterwards.
  for (int round = 0; round < 3; ++round) {
    int samples = 0;
    std::optional<WindowRound> r;
    while (!r.has_value()) {
      r = w.add_sample(Celsius{48.0});
      ++samples;
    }
    EXPECT_EQ(samples, 4) << "round " << round;
  }
}

TEST(TwoLevelWindow, StaggerIsStickyAcrossReset) {
  // A mode change resets the window; the phase offset must survive or the
  // fleet re-synchronizes on the first reset and the wheel stops working.
  TwoLevelWindow w;
  w.stagger(2);
  EXPECT_FALSE(w.add_sample(Celsius{40.0}).has_value());
  EXPECT_TRUE(w.add_sample(Celsius{40.0}).has_value());  // short round: 2 samples
  w.reset();
  EXPECT_FALSE(w.add_sample(Celsius{40.0}).has_value());
  EXPECT_TRUE(w.add_sample(Celsius{40.0}).has_value());  // short again after reset
  // Zero stagger restores synchronized behaviour.
  TwoLevelWindow plain;
  plain.stagger(0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(plain.add_sample(Celsius{40.0}).has_value());
  }
  EXPECT_TRUE(plain.add_sample(Celsius{40.0}).has_value());
}

}  // namespace
}  // namespace thermctl::core
