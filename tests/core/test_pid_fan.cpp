#include "core/pid_fan.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

PidFanConfig paper_setpoint() {
  PidFanConfig cfg;
  cfg.setpoint = Celsius{50.0};
  return cfg;
}

TEST(PidFan, ClaimsManualModeOnFirstTick) {
  ControllerRig rig;
  PidFanController pid{*rig.hwmon, paper_setpoint()};
  rig.tick(pid, 45.0, SimTime::from_ms(250));
  EXPECT_TRUE(rig.chip.manual_mode());
}

TEST(PidFan, PositiveErrorDrivesDutyUp) {
  ControllerRig rig;
  PidFanController pid{*rig.hwmon, paper_setpoint()};
  rig.run_flat(pid, 55.0, 8);  // 5 degC above setpoint
  EXPECT_GT(pid.current_duty().percent(), 40.0);  // Kp*5 = 40 plus Ki term
}

TEST(PidFan, BelowSetpointSitsAtMinimum) {
  ControllerRig rig;
  PidFanController pid{*rig.hwmon, paper_setpoint()};
  rig.run_flat(pid, 42.0, 20);
  EXPECT_NEAR(pid.current_duty().percent(), 1.0, 0.5);
}

TEST(PidFan, IntegratorRemovesSteadyStateError) {
  ControllerRig rig;
  PidFanController pid{*rig.hwmon, paper_setpoint()};
  // Hold 1 degC above setpoint: Kp alone gives 8%, the integrator keeps
  // climbing toward saturation to close the residual error.
  rig.run_flat(pid, 51.0, 4);
  const double early = pid.current_duty().percent();
  rig.run_flat(pid, 51.0, 200);
  EXPECT_GT(pid.current_duty().percent(), early + 10.0);
}

TEST(PidFan, AntiWindupFreezesIntegratorAtSaturation) {
  ControllerRig rig;
  PidFanController pid{*rig.hwmon, paper_setpoint()};
  rig.run_flat(pid, 70.0, 200);  // pinned at max for 50 s
  const double wound = pid.integrator();
  rig.run_flat(pid, 70.0, 200);
  EXPECT_NEAR(pid.integrator(), wound, 1e-9);  // frozen while saturated
  // Recovery: once below setpoint, duty must unwind promptly, not after
  // minutes of integrator drain.
  rig.run_flat(pid, 45.0, 40);  // 10 s below setpoint
  EXPECT_LT(pid.current_duty().percent(), 60.0);
}

TEST(PidFan, DerivativeReactsToRateOfChange) {
  ControllerRig rig;
  PidFanConfig cfg = paper_setpoint();
  cfg.ki = 0.0;  // isolate Kd
  PidFanController pid{*rig.hwmon, cfg};
  SimTime now;
  // Rising fast but still below setpoint: Kd must push duty above the
  // (negative-error) proportional response.
  rig.tick(pid, 44.0, now.advance_us(250000));
  rig.tick(pid, 45.5, now.advance_us(250000));  // +6 degC/s
  // Kp*(-4.5) + Kd*6 = -36 + 24 < min... so compare against Kd = 0.
  const double with_kd = pid.current_duty().percent();
  ControllerRig rig2;
  PidFanConfig cfg2 = cfg;
  cfg2.kd = 0.0;
  PidFanController pid2{*rig2.hwmon, cfg2};
  SimTime now2;
  rig2.tick(pid2, 44.0, now2.advance_us(250000));
  rig2.tick(pid2, 45.5, now2.advance_us(250000));
  EXPECT_GE(with_kd, pid2.current_duty().percent());
}

TEST(PidFan, RespectsDutyBounds) {
  ControllerRig rig;
  PidFanConfig cfg = paper_setpoint();
  cfg.max_duty = DutyCycle{60.0};
  PidFanController pid{*rig.hwmon, cfg};
  rig.run_flat(pid, 80.0, 40);
  EXPECT_NEAR(pid.current_duty().percent(), 60.0, 0.5);
}

TEST(PidFan, ResetClearsState) {
  ControllerRig rig;
  PidFanController pid{*rig.hwmon, paper_setpoint()};
  rig.run_flat(pid, 55.0, 40);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integrator(), 0.0);
}

TEST(PidFanDeath, RejectsInvertedDutyRange) {
  ControllerRig rig;
  PidFanConfig cfg;
  cfg.min_duty = DutyCycle{80.0};
  cfg.max_duty = DutyCycle{20.0};
  EXPECT_DEATH(PidFanController(*rig.hwmon, cfg), "inverted");
}

}  // namespace
}  // namespace thermctl::core
