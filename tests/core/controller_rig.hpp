// Shared fixture for controller unit tests: a full sysfs plane (hwmon +
// cpufreq) over simulated devices, with a hand-controlled "true" temperature
// so tests can script exact thermal scenarios without running the RC model.
#pragma once

#include <memory>

#include "common/sim_time.hpp"
#include "hw/adt7467.hpp"
#include "hw/cpu_device.hpp"
#include "hw/i2c.hpp"
#include "hw/thermal_sensor.hpp"
#include "sysfs/adt7467_driver.hpp"
#include "sysfs/cpufreq.hpp"
#include "sysfs/hwmon.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::core::testing {

struct ControllerRig {
  sysfs::VirtualFs fs;
  hw::I2cBus bus;
  hw::Adt7467 chip;
  hw::CpuDevice cpu;
  sysfs::Adt7467Driver driver{bus};
  double truth = 40.0;  // scripted die temperature
  hw::ThermalSensor sensor{[this] { return Celsius{truth}; },
                           [] {
                             hw::SensorParams p;
                             p.noise_sigma_degc = 0.0;  // deterministic tests
                             return p;
                           }(),
                           Rng{1}};
  std::unique_ptr<sysfs::HwmonDevice> hwmon;
  std::unique_ptr<sysfs::CpufreqPolicy> cpufreq;

  ControllerRig() {
    bus.attach(sysfs::Adt7467Driver::kDefaultAddress, &chip);
    if (driver.probe() != sysfs::DriverStatus::kOk) {
      abort();
    }
    hwmon = std::make_unique<sysfs::HwmonDevice>(fs, "/sys/class/hwmon", 0, sensor, driver);
    cpufreq =
        std::make_unique<sysfs::CpufreqPolicy>(fs, "/sys/devices/system/cpu", 0, cpu);
  }

  /// Feeds `temp` to the sensor (one 250 ms sample) and ticks `controller`.
  template <typename Controller>
  void tick(Controller& controller, double temp, SimTime now) {
    truth = temp;
    sensor.sample();
    controller.on_sample(now);
  }

  /// Runs `n` ticks at a fixed temperature, advancing a local clock.
  template <typename Controller>
  SimTime run_flat(Controller& controller, double temp, int n, SimTime start = {}) {
    SimTime now = start;
    for (int i = 0; i < n; ++i) {
      now.advance_us(250000);
      tick(controller, temp, now);
    }
    return now;
  }
};

}  // namespace thermctl::core::testing
