#include "core/power_cap.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"
#include "sysfs/powercap.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

struct CapRig : ControllerRig {
  sysfs::RaplDomain rapl{fs, "/sys/class/powercap", 0, cpu};
  SimTime now;

  /// One capper interval: advance counters at the CPU's current state.
  void interval(PowerCapper& capper, double util) {
    cpu.set_utilization(Utilization{util});
    cpu.advance_counters(Seconds{1.0});
    now.advance_us(1000000);
    capper.on_interval(now);
  }
};

PowerCapConfig budget(double w) {
  PowerCapConfig cfg;
  cfg.budget = Watts{w};
  return cfg;
}

TEST(PowerCap, FirstIntervalPrimes) {
  CapRig rig;
  PowerCapper capper{rig.rapl, *rig.cpufreq, budget(45.0)};
  rig.interval(capper, 1.0);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
}

TEST(PowerCap, StepsDownWhenOverBudget) {
  CapRig rig;
  PowerCapper capper{rig.rapl, *rig.cpufreq, budget(45.0)};
  rig.interval(capper, 1.0);  // prime
  rig.interval(capper, 1.0);  // ~72 W measured > 45 -> step down
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.2);
  EXPECT_GT(capper.last_power_w(), 60.0);
}

TEST(PowerCap, WalksDownUntilUnderBudget) {
  CapRig rig;
  PowerCapper capper{rig.rapl, *rig.cpufreq, budget(45.0)};
  for (int i = 0; i < 8; ++i) {
    rig.interval(capper, 1.0);
  }
  // Steady state: measured power at the settled frequency is under budget.
  EXPECT_LE(capper.last_power_w(), 45.0 + 1.0);
  EXPECT_LT(rig.cpu.frequency().value(), 2.4);
}

TEST(PowerCap, StepsBackUpWhenLoadDrops) {
  CapRig rig;
  PowerCapper capper{rig.rapl, *rig.cpufreq, budget(45.0)};
  for (int i = 0; i < 8; ++i) {
    rig.interval(capper, 1.0);  // capped low
  }
  const double capped = rig.cpu.frequency().value();
  for (int i = 0; i < 8; ++i) {
    rig.interval(capper, 0.1);  // nearly idle: far below budget - margin
  }
  EXPECT_GT(rig.cpu.frequency().value(), capped);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);  // fully restored
}

TEST(PowerCap, HysteresisPreventsPingPong) {
  CapRig rig;
  PowerCapConfig cfg = budget(52.0);
  cfg.margin = Watts{8.0};
  PowerCapper capper{rig.rapl, *rig.cpufreq, cfg};
  for (int i = 0; i < 20; ++i) {
    rig.interval(capper, 1.0);
  }
  // At the settled frequency, power sits inside (budget - margin, budget]:
  // no further transitions.
  const auto trans = rig.cpu.transition_count();
  for (int i = 0; i < 20; ++i) {
    rig.interval(capper, 1.0);
  }
  EXPECT_EQ(rig.cpu.transition_count(), trans);
}

TEST(PowerCap, TracksOvershootTime) {
  CapRig rig;
  PowerCapper capper{rig.rapl, *rig.cpufreq, budget(45.0)};
  for (int i = 0; i < 8; ++i) {
    rig.interval(capper, 1.0);
  }
  // The first couple of intervals exceeded the budget while stepping down.
  EXPECT_GT(capper.overshoot_seconds(), 0.5);
  EXPECT_LT(capper.overshoot_seconds(), 5.0);
}

TEST(PowerCapDeath, RejectsNonPositiveBudget) {
  CapRig rig;
  EXPECT_DEATH(PowerCapper(rig.rapl, *rig.cpufreq, budget(0.0)), "budget");
}

}  // namespace
}  // namespace thermctl::core
