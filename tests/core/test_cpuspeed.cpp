#include "core/cpuspeed.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

struct CpuspeedRig : ControllerRig {
  std::uint64_t busy = 0;
  std::uint64_t total = 0;
  CpuspeedGovernor governor{[this] { return busy; }, [this] { return total; }, *cpufreq,
                            CpuspeedConfig{}};
  SimTime now;

  /// Simulates one governor interval at utilization `u`.
  void interval(double u) {
    total += 100;  // 1 s at USER_HZ
    busy += static_cast<std::uint64_t>(u * 100.0);
    now.advance_us(1000000);
    governor.on_interval(now);
  }
};

TEST(Cpuspeed, FirstIntervalOnlyPrimes) {
  CpuspeedRig rig;
  rig.interval(0.0);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
  EXPECT_EQ(rig.cpu.transition_count(), 0u);
}

TEST(Cpuspeed, StepsDownWhenIdle) {
  CpuspeedRig rig;
  rig.interval(0.1);  // prime
  rig.interval(0.1);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.2);  // one rung down
  rig.interval(0.1);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.0);
}

TEST(Cpuspeed, WalksToMinimumUnderSustainedIdle) {
  CpuspeedRig rig;
  for (int i = 0; i < 8; ++i) {
    rig.interval(0.05);
  }
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 1.0);
  // Stays there without further transitions.
  const auto trans = rig.cpu.transition_count();
  rig.interval(0.05);
  EXPECT_EQ(rig.cpu.transition_count(), trans);
}

TEST(Cpuspeed, JumpsToMaxWhenBusy) {
  CpuspeedRig rig;
  for (int i = 0; i < 8; ++i) {
    rig.interval(0.05);  // drive to minimum
  }
  rig.interval(0.95);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);  // straight to max
}

TEST(Cpuspeed, MidUtilizationHolds) {
  CpuspeedRig rig;
  rig.interval(0.85);  // prime
  const auto trans = rig.cpu.transition_count();
  for (int i = 0; i < 5; ++i) {
    rig.interval(0.85);  // between down (0.75) and up (0.90)
  }
  EXPECT_EQ(rig.cpu.transition_count(), trans);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
}

TEST(Cpuspeed, PhaseAlternationThrashesFrequencies) {
  // The Table 1 phenomenon: compute/comm alternation = up/down churn.
  CpuspeedRig rig;
  rig.interval(1.0);
  for (int i = 0; i < 50; ++i) {
    rig.interval(1.0);   // compute: jump/stay max
    rig.interval(0.5);   // comm: step down
  }
  // Every comm interval steps down, every compute interval jumps up:
  // ~2 transitions per cycle.
  EXPECT_GE(rig.cpu.transition_count(), 80u);
}

TEST(Cpuspeed, ThermallyBlind) {
  // No matter what the temperature does, cpuspeed only reads jiffies —
  // the sensor is never consulted. (Structural: the governor holds no
  // reference to hwmon; this test documents the behavioural consequence.)
  CpuspeedRig rig;
  rig.truth = 90.0;  // scorching
  rig.sensor.sample();
  rig.interval(1.0);
  rig.interval(1.0);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);  // still flat out
}

TEST(Cpuspeed, LastUtilizationExposed) {
  CpuspeedRig rig;
  rig.interval(0.6);
  rig.interval(0.6);
  EXPECT_NEAR(rig.governor.last_utilization(), 0.6, 0.01);
}

TEST(Cpuspeed, ZeroTotalDeltaIsIgnored) {
  CpuspeedRig rig;
  rig.interval(0.5);
  rig.governor.on_interval(rig.now);  // no jiffies advanced
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
}

TEST(Cpuspeed, ProcStatConstructorReadsTheFile) {
  // Daemon-faithful wiring: the governor parses /proc/stat text every
  // interval rather than calling into the node object.
  ControllerRig rig;
  std::uint64_t busy = 0;
  std::uint64_t total = 0;
  sysfs::ProcStat proc_stat{rig.fs, [&busy] { return busy; }, [&total] { return total; }};
  CpuspeedGovernor governor{rig.fs, proc_stat, *rig.cpufreq, CpuspeedConfig{}};
  SimTime now;
  auto interval = [&](double u) {
    total += 100;
    busy += static_cast<std::uint64_t>(u * 100.0);
    now.advance_us(1000000);
    governor.on_interval(now);
  };
  interval(0.1);  // prime
  interval(0.1);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.2);  // stepped down via the file
  interval(1.0);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);  // jumped up via the file
}

TEST(CpuspeedDeath, RejectsInvertedThresholds) {
  ControllerRig rig;
  CpuspeedConfig cfg;
  cfg.up_threshold = 0.5;
  cfg.down_threshold = 0.7;
  EXPECT_DEATH(CpuspeedGovernor([] { return std::uint64_t{0}; },
                                [] { return std::uint64_t{0}; }, *rig.cpufreq, cfg),
               "threshold");
}

}  // namespace
}  // namespace thermctl::core
