#include "core/tempest.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace thermctl::core {
namespace {

using cluster::ActivityCode;

cluster::NodeSeries scripted_series() {
  // 10 samples compute heating +0.5/sample, 10 samples comm cooling -0.2.
  cluster::NodeSeries s;
  double temp = 40.0;
  for (int i = 0; i < 10; ++i) {
    s.die_temp.push_back(temp += 0.5);
    s.util.push_back(1.0);
    s.activity.push_back(static_cast<double>(static_cast<int>(ActivityCode::kCompute)));
  }
  for (int i = 0; i < 10; ++i) {
    s.die_temp.push_back(temp -= 0.2);
    s.util.push_back(0.35);
    s.activity.push_back(static_cast<double>(static_cast<int>(ActivityCode::kCommunicate)));
  }
  return s;
}

TEST(Tempest, AttributesHeatingToCompute) {
  const TempestReport r = attribute_heat(scripted_series(), 0.25);
  const auto& compute = r.by_activity[static_cast<std::size_t>(ActivityCode::kCompute)];
  const auto& comm = r.by_activity[static_cast<std::size_t>(ActivityCode::kCommunicate)];
  EXPECT_NEAR(compute.heating_c, 4.5, 1e-9);  // 9 deltas of +0.5
  EXPECT_NEAR(compute.cooling_c, 0.0, 1e-9);
  // The compute->comm boundary sample carries one cooling delta; 9 more follow.
  EXPECT_NEAR(comm.cooling_c, 2.0, 1e-9);
  EXPECT_EQ(r.hottest, ActivityCode::kCompute);
  EXPECT_NEAR(r.total_heating_c, 4.5, 1e-9);
}

TEST(Tempest, TimeAndUtilizationBookkeeping) {
  const TempestReport r = attribute_heat(scripted_series(), 0.25);
  const auto& compute = r.by_activity[static_cast<std::size_t>(ActivityCode::kCompute)];
  const auto& comm = r.by_activity[static_cast<std::size_t>(ActivityCode::kCommunicate)];
  // 19 counted samples (first sample has no delta): 9 compute + 10 comm.
  EXPECT_NEAR(compute.time_s, 9 * 0.25, 1e-9);
  EXPECT_NEAR(comm.time_s, 10 * 0.25, 1e-9);
  EXPECT_NEAR(compute.avg_util, 1.0, 1e-9);
  EXPECT_NEAR(comm.avg_util, 0.35, 1e-9);
  EXPECT_NEAR(compute.time_share + comm.time_share, 1.0, 1e-9);
}

TEST(Tempest, EmptySeriesIsEmptyReport) {
  const TempestReport r = attribute_heat(cluster::NodeSeries{}, 0.25);
  EXPECT_DOUBLE_EQ(r.total_heating_c, 0.0);
  EXPECT_EQ(r.hottest, ActivityCode::kNone);
}

TEST(Tempest, RenderNamesActivities) {
  const std::string text = render_tempest(attribute_heat(scripted_series(), 0.25));
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("communicate"), std::string::npos);
  EXPECT_NE(text.find("hot spot: compute"), std::string::npos);
}

TEST(Tempest, EndToEndBtAttribution) {
  // On a real (mini) BT run, compute must dominate both time and heating —
  // the §3.1 premise that CPU-intensive phases are what heat the die.
  ExperimentConfig cfg = paper_platform();
  cfg.workload = WorkloadKind::kNpbBt;
  cfg.npb_iterations_override = 40;
  cfg.fan = FanPolicyKind::kConstantDuty;
  cfg.constant_duty = DutyCycle{40.0};
  const ExperimentResult result = run_experiment(cfg);

  const TempestReport r = attribute_heat(result.run.nodes[0], 0.25);
  const auto& compute = r.by_activity[static_cast<std::size_t>(ActivityCode::kCompute)];
  const auto& comm = r.by_activity[static_cast<std::size_t>(ActivityCode::kCommunicate)];
  EXPECT_EQ(r.hottest, ActivityCode::kCompute);
  EXPECT_GT(compute.time_share, 0.5);
  EXPECT_GT(compute.heating_c, comm.heating_c);
  EXPECT_GT(compute.avg_util, 0.9);
  EXPECT_LT(comm.avg_util, 0.6);
}

TEST(Tempest, ActivityRecordedOnlyForAppNodes) {
  ExperimentConfig cfg = paper_platform();
  cfg.nodes = 1;
  cfg.workload = WorkloadKind::kFig2Profile;  // segment load, no app
  cfg.engine.horizon = Seconds{20.0};
  const ExperimentResult result = run_experiment(cfg);
  for (double a : result.run.nodes[0].activity) {
    EXPECT_EQ(static_cast<int>(a), 0);  // kNone throughout
  }
}

TEST(TempestDeath, RejectsNonPositiveDt) {
  EXPECT_DEATH((void)attribute_heat(cluster::NodeSeries{}, 0.0), "positive");
}

}  // namespace
}  // namespace thermctl::core
