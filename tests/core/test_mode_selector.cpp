#include "core/mode_selector.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace thermctl::core {
namespace {

ModeSelector paper_selector(std::size_t n = 100) {
  return ModeSelector{ModeSelectorConfig{}, n};
}

TEST(ModeSelector, ConstantMatchesPaperFormula) {
  // c = (N-1)/(t_max - t_min) = 99 / (82 - 38) = 2.25.
  EXPECT_NEAR(paper_selector().c(), 2.25, 1e-12);
}

TEST(ModeSelector, PositiveDeltaRaisesIndex) {
  const ModeSelector s = paper_selector();
  // Δt = 2 °C → c·Δt = 4.5 → truncated to +4.
  EXPECT_EQ(s.apply(10, CelsiusDelta{2.0}), 14u);
}

TEST(ModeSelector, NegativeDeltaLowersIndex) {
  const ModeSelector s = paper_selector();
  EXPECT_EQ(s.apply(10, CelsiusDelta{-2.0}), 6u);
}

TEST(ModeSelector, SubCellDeltaIgnored) {
  const ModeSelector s = paper_selector();
  // |c·Δt| < 1: truncation keeps the index put (jitter rejection).
  EXPECT_EQ(s.apply(10, CelsiusDelta{0.4}), 10u);
  EXPECT_EQ(s.apply(10, CelsiusDelta{-0.4}), 10u);
}

TEST(ModeSelector, ClampsAtBounds) {
  const ModeSelector s = paper_selector();
  EXPECT_EQ(s.apply(2, CelsiusDelta{-10.0}), 0u);
  EXPECT_EQ(s.apply(95, CelsiusDelta{10.0}), 99u);
}

TEST(ModeSelector, DeadbandWidensRejection) {
  ModeSelectorConfig cfg;
  cfg.deadband = CelsiusDelta{1.0};
  const ModeSelector s{cfg, 100};
  EXPECT_EQ(s.apply(10, CelsiusDelta{0.9}), 10u);   // inside deadband
  EXPECT_EQ(s.apply(10, CelsiusDelta{1.5}), 13u);   // outside: c*1.5 = 3.37
}

TEST(ModeSelector, DecideUsesLevel1First) {
  const ModeSelector s = paper_selector();
  WindowRound round;
  round.level1_delta = CelsiusDelta{2.0};
  round.level2_delta = CelsiusDelta{-5.0};
  round.level2_valid = true;
  const ModeDecision d = s.decide(10, round);
  EXPECT_TRUE(d.changed);
  EXPECT_FALSE(d.used_level2);
  EXPECT_EQ(d.target, 14u);
}

TEST(ModeSelector, DecideFallsBackToLevel2) {
  // §3.2.2: "If the temperature variation from the first level does not
  // result in a change in mode index, our algorithm then uses the
  // temperature variation from the second level."
  const ModeSelector s = paper_selector();
  WindowRound round;
  round.level1_delta = CelsiusDelta{0.2};   // sub-cell
  round.level2_delta = CelsiusDelta{1.5};   // gradual trend worth +3
  round.level2_valid = true;
  const ModeDecision d = s.decide(10, round);
  EXPECT_TRUE(d.changed);
  EXPECT_TRUE(d.used_level2);
  EXPECT_EQ(d.target, 13u);
}

TEST(ModeSelector, DecideNoChangeWhenBothFlat) {
  const ModeSelector s = paper_selector();
  WindowRound round;
  round.level1_delta = CelsiusDelta{0.1};
  round.level2_delta = CelsiusDelta{-0.2};
  round.level2_valid = true;
  const ModeDecision d = s.decide(10, round);
  EXPECT_FALSE(d.changed);
  EXPECT_EQ(d.target, 10u);
}

TEST(ModeSelector, DecideSkipsInvalidLevel2) {
  const ModeSelector s = paper_selector();
  WindowRound round;
  round.level1_delta = CelsiusDelta{0.1};
  round.level2_delta = CelsiusDelta{5.0};  // would move, but invalid
  round.level2_valid = false;
  EXPECT_FALSE(s.decide(10, round).changed);
}

TEST(ModeSelector, SmallerArrayScalesConstant) {
  // N = 16 over the same band: c = 15/44.
  const ModeSelector s = paper_selector(16);
  EXPECT_NEAR(s.c(), 15.0 / 44.0, 1e-12);
  // A 3 °C rise moves just one cell.
  EXPECT_EQ(s.apply(4, CelsiusDelta{3.0}), 5u);
}

TEST(ModeSelector, HugeDeltaClampsInsteadOfOverflowing) {
  // Regression: c·Δt used to be cast straight to long, which is UB once the
  // product leaves long's range. A huge (but finite) delta must clamp to the
  // array bounds instead.
  const ModeSelector s = paper_selector();
  EXPECT_EQ(s.apply(10, CelsiusDelta{1e18}), 99u);
  EXPECT_EQ(s.apply(10, CelsiusDelta{-1e18}), 0u);
  EXPECT_EQ(s.apply(0, CelsiusDelta{std::numeric_limits<double>::max()}), 99u);
}

TEST(ModeSelector, NonFiniteDeltaKeepsIndex) {
  // NaN/Inf deltas carry no directional information and previously fed UB
  // into the double→long cast; the selector must stay put.
  const ModeSelector s = paper_selector();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(s.apply(10, CelsiusDelta{nan}), 10u);
  EXPECT_EQ(s.apply(10, CelsiusDelta{inf}), 10u);
  EXPECT_EQ(s.apply(10, CelsiusDelta{-inf}), 10u);

  WindowRound round;
  round.level1_delta = CelsiusDelta{nan};
  round.level2_delta = CelsiusDelta{nan};
  round.level2_valid = true;
  EXPECT_FALSE(s.decide(10, round).changed);
}

TEST(ModeSelectorDeath, RejectsInvertedBand) {
  ModeSelectorConfig cfg;
  cfg.tmin = Celsius{80.0};
  cfg.tmax = Celsius{40.0};
  EXPECT_DEATH(ModeSelector(cfg, 100), "exceed");
}

TEST(ModeSelectorDeath, RejectsSingleModeArray) {
  EXPECT_DEATH(ModeSelector(ModeSelectorConfig{}, 1), "two");
}

}  // namespace
}  // namespace thermctl::core
