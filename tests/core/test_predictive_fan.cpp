#include "core/predictive_fan.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"
#include "sysfs/powercap.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

/// Rig with RAPL and a hand-driven power history: counters are advanced by
/// explicitly stepping the CPU device.
struct PredictiveRig : ControllerRig {
  sysfs::RaplDomain rapl{fs, "/sys/class/powercap", 0, cpu};

  /// Simulates 250 ms at a given utilization (power follows instantly) and
  /// a given temperature, and ticks the controller.
  template <typename Controller>
  void quarter_second(Controller& ctl, double util, double temp, SimTime& now) {
    cpu.set_utilization(Utilization{util});
    cpu.advance_counters(Seconds{0.25});
    now.advance_us(250000);
    tick(ctl, temp, now);
  }
};

PredictiveFanConfig paper_cfg(int pp = 50) {
  PredictiveFanConfig cfg;
  cfg.base.pp = PolicyParam{pp};
  return cfg;
}

TEST(PredictiveFan, QuietWhenPowerAndTemperatureFlat) {
  PredictiveRig rig;
  PredictiveFanController ctl{*rig.hwmon, rig.rapl, paper_cfg()};
  SimTime now;
  for (int i = 0; i < 40; ++i) {
    rig.quarter_second(ctl, 0.3, 42.0, now);
  }
  EXPECT_EQ(ctl.retarget_count(), 0u);
  EXPECT_EQ(ctl.current_index(), 0u);
}

TEST(PredictiveFan, PowerStepTriggersBeforeTemperatureMoves) {
  // The decisive scenario: utilization jumps 0.1 -> 1.0 but the (scripted)
  // temperature has not moved yet. History alone would do nothing; the
  // counter feed-forward must retarget within the first completed round.
  PredictiveRig rig;
  PredictiveFanController ctl{*rig.hwmon, rig.rapl, paper_cfg()};
  SimTime now;
  for (int i = 0; i < 8; ++i) {  // two quiet rounds to prime power history
    rig.quarter_second(ctl, 0.1, 40.0, now);
  }
  const auto before = ctl.retarget_count();
  for (int i = 0; i < 4; ++i) {  // one round of full load, temp still flat
    rig.quarter_second(ctl, 1.0, 40.0, now);
  }
  EXPECT_GT(ctl.retarget_count(), before);
  EXPECT_GT(ctl.feedforward_count(), 0u);
  EXPECT_GT(ctl.current_index(), 0u);
}

TEST(PredictiveFan, HistoryOnlyControllerMissesTheSameStep) {
  // Contrast: the baseline DynamicFanController sees only the flat
  // temperature and does nothing — the lag the future-work item removes.
  PredictiveRig rig;
  FanControlConfig base;
  base.pp = PolicyParam{50};
  DynamicFanController ctl{*rig.hwmon, base};
  SimTime now;
  for (int i = 0; i < 8; ++i) {
    rig.quarter_second(ctl, 0.1, 40.0, now);
  }
  for (int i = 0; i < 4; ++i) {
    rig.quarter_second(ctl, 1.0, 40.0, now);
  }
  EXPECT_EQ(ctl.retarget_count(), 0u);
}

TEST(PredictiveFan, PowerDropUnwindsTheFan) {
  PredictiveRig rig;
  PredictiveFanController ctl{*rig.hwmon, rig.rapl, paper_cfg()};
  SimTime now;
  for (int i = 0; i < 8; ++i) {
    rig.quarter_second(ctl, 1.0, 50.0, now);
  }
  // Push the index up with a couple of hot rounds.
  for (int i = 0; i < 8; ++i) {
    rig.quarter_second(ctl, 1.0, 50.0 + 0.5 * i, now);
  }
  const std::size_t peak = ctl.current_index();
  ASSERT_GT(peak, 0u);
  // Load vanishes; temperature still high but flat — feed-forward unwinds.
  for (int i = 0; i < 4; ++i) {
    rig.quarter_second(ctl, 0.05, 53.0, now);
  }
  EXPECT_LT(ctl.current_index(), peak);
}

TEST(PredictiveFan, DeadbandSuppressesMeterNoise) {
  PredictiveRig rig;
  PredictiveFanConfig cfg = paper_cfg();
  cfg.power_deadband_w = 200.0;  // absurdly wide: feed-forward always off
  PredictiveFanController ctl{*rig.hwmon, rig.rapl, cfg};
  SimTime now;
  for (int i = 0; i < 8; ++i) {
    rig.quarter_second(ctl, 0.1, 40.0, now);
  }
  for (int i = 0; i < 8; ++i) {
    rig.quarter_second(ctl, 1.0, 40.0, now);  // temp flat, power step gated off
  }
  EXPECT_EQ(ctl.feedforward_count(), 0u);
  EXPECT_EQ(ctl.retarget_count(), 0u);
}

TEST(PredictiveFan, StillRespondsToPlainTemperatureTrends) {
  // With power flat, it must behave like the baseline controller.
  PredictiveRig rig;
  PredictiveFanController ctl{*rig.hwmon, rig.rapl, paper_cfg()};
  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 60; ++i) {
    temp += 0.2;
    rig.quarter_second(ctl, 0.5, temp, now);
  }
  EXPECT_GT(ctl.current_index(), 5u);
  EXPECT_GT(ctl.retarget_count(), 0u);
}

}  // namespace
}  // namespace thermctl::core
