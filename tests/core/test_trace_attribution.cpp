// The decision-trace contract test the observability work hangs off: in a
// scripted thermal scenario, EVERY fan and tDVFS mode change the controllers
// apply must appear in the trace — at the same time, with the same from/to
// values, and with the correct Δt-source attribution (level-1 sudden change
// vs level-2 gradual trend) and consistency counts.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "controller_rig.hpp"
#include "core/fan_policy.hpp"
#include "core/tdvfs.hpp"
#include "obs/trace.hpp"
#include "obs/trace_summary.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

std::vector<obs::ModeChange> changes_of(const obs::TraceRing& ring,
                                        obs::TraceSubsystem subsystem) {
  std::vector<obs::ModeChange> out;
  for (const obs::ModeChange& mc : obs::mode_change_sequence(ring.events())) {
    if (mc.subsystem == subsystem) {
      out.push_back(mc);
    }
  }
  return out;
}

TEST(TraceAttribution, EveryFanModeChangeIsTracedWithDeltaSource) {
  ControllerRig rig;
  FanControlConfig cfg;
  cfg.pp = PolicyParam{50};
  DynamicFanController fan{*rig.hwmon, cfg};
  obs::TraceRing ring{0, 1u << 12};
  fan.set_trace(&ring);

  // Scripted scenario, three regimes:
  //   1. sudden ramp (+0.8 °C/round) — level-1 Δt drives the fan up,
  //   2. slow drift (+0.08 °C/round) — only the level-2 predictor can see it,
  //   3. sudden cool-down — level-1 drives it back down.
  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 40; ++i) {
    now.advance_us(250000);
    temp += 0.2;
    rig.tick(fan, temp, now);
  }
  for (int i = 0; i < 200; ++i) {
    now.advance_us(250000);
    temp += 0.02;
    rig.tick(fan, temp, now);
  }
  for (int i = 0; i < 40; ++i) {
    now.advance_us(250000);
    temp -= 0.3;
    rig.tick(fan, temp, now);
  }

  const std::vector<FanEvent>& applied = fan.events();
  const std::vector<obs::ModeChange> traced = changes_of(ring, obs::TraceSubsystem::kFan);
  ASSERT_GE(applied.size(), 3u);  // the scenario must actually move the fan
  ASSERT_EQ(traced.size(), applied.size());
  bool saw_level1 = false;
  bool saw_level2 = false;
  for (std::size_t k = 0; k < applied.size(); ++k) {
    EXPECT_DOUBLE_EQ(traced[k].t_s, applied[k].time_s) << "change " << k;
    EXPECT_DOUBLE_EQ(traced[k].from, applied[k].from_duty) << "change " << k;
    EXPECT_DOUBLE_EQ(traced[k].to, applied[k].to_duty) << "change " << k;
    EXPECT_EQ(traced[k].used_level2, applied[k].used_level2)
        << "Δt-source attribution diverged at change " << k;
    (applied[k].used_level2 ? saw_level2 : saw_level1) = true;
  }
  // The scenario is built to exercise BOTH attribution paths.
  EXPECT_TRUE(saw_level1);
  EXPECT_TRUE(saw_level2);
}

TEST(TraceAttribution, DecisionEventsPrecedeAndExplainEachRetarget) {
  ControllerRig rig;
  FanControlConfig cfg;
  cfg.pp = PolicyParam{50};
  DynamicFanController fan{*rig.hwmon, cfg};
  obs::TraceRing ring{0, 1u << 12};
  fan.set_trace(&ring);

  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 80; ++i) {
    now.advance_us(250000);
    temp += 0.15;
    rig.tick(fan, temp, now);
  }
  // Hold flat so unchanged rounds accumulate too (rounds > retargets below).
  for (int i = 0; i < 40; ++i) {
    now.advance_us(250000);
    rig.tick(fan, temp, now);
  }

  // Walk the raw stream: every applied retarget must be immediately preceded
  // by a window round and a mode decision flagged kChanged whose target index
  // and Δt-source agree with the retarget.
  const std::vector<obs::TraceEvent> events = ring.events();
  std::size_t retargets = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != obs::TraceEventType::kFanRetarget) {
      continue;
    }
    ++retargets;
    ASSERT_GE(i, 2u);
    const obs::TraceEvent& decision = events[i - 1];
    const obs::TraceEvent& round = events[i - 2];
    ASSERT_EQ(decision.type, obs::TraceEventType::kModeDecision);
    ASSERT_EQ(round.type, obs::TraceEventType::kWindowRound);
    EXPECT_DOUBLE_EQ(decision.t_s, events[i].t_s);
    EXPECT_TRUE(decision.flags & obs::kTraceFlagChanged);
    EXPECT_EQ(decision.i1, events[i].i0);  // same target array index
    EXPECT_EQ(decision.flags & obs::kTraceFlagUsedLevel2,
              events[i].flags & obs::kTraceFlagUsedLevel2);
    // The decision's Δt must be the one the round reported for its source:
    // level-1 Δt normally, level-2 Δt when the gradual predictor fired.
    const double expected_delta =
        (decision.flags & obs::kTraceFlagUsedLevel2) ? round.c : round.b;
    EXPECT_DOUBLE_EQ(decision.b, expected_delta);
  }
  EXPECT_GT(retargets, 0u);
  // Rounds fire every 4 samples (1 s); they outnumber retargets.
  const auto stats = obs::decision_stats(events);
  EXPECT_GT(stats.at(0).window_rounds, stats.at(0).fan_retargets);
  EXPECT_EQ(stats.at(0).fan_retargets, retargets);
}

TEST(TraceAttribution, EveryTdvfsTransitionIsTracedWithConsistencyCount) {
  ControllerRig rig;
  TdvfsConfig cfg;
  cfg.pp = PolicyParam{50};
  cfg.threshold = Celsius{51.0};
  cfg.consistency_rounds = 3;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, cfg};
  obs::TraceRing ring{0, 1u << 12};
  daemon.set_trace(&ring);

  // Hot plateau long enough to trigger, then a cool plateau long enough for
  // the (longer) restore window.
  rig.run_flat(daemon, 54.0, 24);
  ASSERT_LT(rig.cpu.frequency().value(), 2.4);
  rig.run_flat(daemon, 46.0, 48, SimTime::from_ms(24 * 250));

  const std::vector<TdvfsEvent>& applied = daemon.events();
  const std::vector<obs::ModeChange> traced = changes_of(ring, obs::TraceSubsystem::kTdvfs);
  ASSERT_GE(applied.size(), 2u);  // at least one trigger and the restore
  ASSERT_EQ(traced.size(), applied.size());
  for (std::size_t k = 0; k < applied.size(); ++k) {
    EXPECT_DOUBLE_EQ(traced[k].t_s, applied[k].time_s) << "transition " << k;
    EXPECT_DOUBLE_EQ(traced[k].from, applied[k].from_ghz) << "transition " << k;
    EXPECT_DOUBLE_EQ(traced[k].to, applied[k].to_ghz) << "transition " << k;
    // Triggers are armed by the consistency machinery; the count that armed
    // each one must ride along and be at least the configured floor.
    if (!traced[k].is_restore) {
      EXPECT_GE(traced[k].consistency_rounds, cfg.consistency_rounds);
    }
  }
  // The scripted scenario ends with the restore to the original frequency.
  EXPECT_TRUE(traced.back().is_restore);
  EXPECT_DOUBLE_EQ(traced.back().to, 2.4);
  EXPECT_GE(traced.back().consistency_rounds, cfg.restore_rounds);
}

TEST(TraceAttribution, QuietScenarioEmitsRoundsButNoModeChanges) {
  // Negative control: a flat, cool scenario produces window rounds and
  // unchanged decisions, but zero mode changes — the trace must agree.
  ControllerRig rig;
  FanControlConfig cfg;
  cfg.pp = PolicyParam{50};
  DynamicFanController fan{*rig.hwmon, cfg};
  obs::TraceRing ring{0, 1u << 12};
  fan.set_trace(&ring);
  rig.run_flat(fan, 42.0, 8);  // settle
  const std::size_t changes_after_settle = changes_of(ring, obs::TraceSubsystem::kFan).size();
  rig.run_flat(fan, 42.0, 80, SimTime::from_ms(8 * 250));

  EXPECT_EQ(changes_of(ring, obs::TraceSubsystem::kFan).size(), changes_after_settle);
  const auto stats = obs::decision_stats(ring.events());
  EXPECT_GT(stats.at(0).window_rounds, 20u);
  EXPECT_EQ(stats.at(0).fan_write_failures, 0u);
}

}  // namespace
}  // namespace thermctl::core
