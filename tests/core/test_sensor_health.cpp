#include "core/sensor_health.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace thermctl::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

SimTime at(double seconds) {
  SimTime t;
  t.advance_us(static_cast<std::uint64_t>(seconds * 1e6));
  return t;
}

/// Small thresholds so tests stay short; semantics are identical.
SensorHealthConfig quick() {
  SensorHealthConfig cfg;
  cfg.stuck_samples = 4;
  cfg.reject_samples = 3;
  cfg.recovery_samples = 2;
  return cfg;
}

TEST(SensorHealthMonitor, HealthyStreamStaysOk) {
  SensorHealthMonitor mon{quick()};
  // A quantized noisy sensor toggles codes — model that.
  const double codes[] = {50.0, 50.25, 50.0, 50.25, 50.5, 50.25};
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(mon.observe(at(0.25 * i), Celsius{codes[i % 6]}), SensorState::kOk);
  }
  EXPECT_FALSE(mon.failed());
  EXPECT_EQ(mon.stats().samples, 60u);
  EXPECT_EQ(mon.stats().rejected, 0u);
  EXPECT_EQ(mon.stats().stuck_detections, 0u);
}

TEST(SensorHealthMonitor, NonFiniteRejectedAndBridged) {
  SensorHealthMonitor mon{quick()};
  mon.observe(at(0.0), Celsius{50.0});
  EXPECT_EQ(mon.observe(at(0.25), Celsius{kNan}), SensorState::kNonFinite);
  // An isolated reject does not fail the sensor; last-good bridges it.
  EXPECT_FALSE(mon.failed());
  ASSERT_TRUE(mon.last_good().has_value());
  EXPECT_DOUBLE_EQ(mon.last_good()->value(), 50.0);
  EXPECT_DOUBLE_EQ(mon.last_good_age(at(0.25)).value(), 0.25);
}

TEST(SensorHealthMonitor, OutOfRangeRejected) {
  SensorHealthMonitor mon{quick()};
  EXPECT_EQ(mon.observe(at(0.0), Celsius{250.0}), SensorState::kOutOfRange);
  EXPECT_EQ(mon.observe(at(0.25), Celsius{-60.0}), SensorState::kOutOfRange);
  EXPECT_EQ(mon.stats().rejected, 2u);
}

TEST(SensorHealthMonitor, RejectStreakConfirmsFailure) {
  SensorHealthMonitor mon{quick()};
  mon.observe(at(0.0), Celsius{50.0});
  for (int i = 1; i <= 3; ++i) {
    mon.observe(at(0.25 * i), Celsius{kNan});
  }
  EXPECT_TRUE(mon.failed());
  EXPECT_EQ(mon.stats().failures, 1u);
}

TEST(SensorHealthMonitor, StuckRunConfirmsFailure) {
  SensorHealthMonitor mon{quick()};
  SensorState last = SensorState::kOk;
  for (int i = 0; i < 4; ++i) {
    last = mon.observe(at(0.25 * i), Celsius{55.0});
  }
  EXPECT_EQ(last, SensorState::kStuck);
  EXPECT_TRUE(mon.failed());
  EXPECT_EQ(mon.stats().stuck_detections, 1u);
  // Staying stuck is still one episode, not one detection per sample.
  mon.observe(at(1.0), Celsius{55.0});
  EXPECT_EQ(mon.stats().stuck_detections, 1u);
}

TEST(SensorHealthMonitor, StuckRunBelowThresholdIsOk) {
  SensorHealthMonitor mon{quick()};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(mon.observe(at(0.25 * i), Celsius{55.0}), SensorState::kOk);
  }
  EXPECT_FALSE(mon.failed());
}

TEST(SensorHealthMonitor, RecoveryClearsLatchAfterConsistentGoodRun) {
  SensorHealthMonitor mon{quick()};
  for (int i = 0; i < 4; ++i) {
    mon.observe(at(0.25 * i), Celsius{55.0});  // stuck → failed
  }
  ASSERT_TRUE(mon.failed());
  // One good reading is not enough (recovery_samples = 2)...
  mon.observe(at(2.0), Celsius{56.0});
  EXPECT_TRUE(mon.failed());
  // ...two in a row is.
  mon.observe(at(2.25), Celsius{56.25});
  EXPECT_FALSE(mon.failed());
  EXPECT_EQ(mon.stats().recoveries, 1u);
}

TEST(SensorHealthMonitor, GarbageInterruptsIdenticalRun) {
  SensorHealthMonitor mon{quick()};
  mon.observe(at(0.0), Celsius{55.0});
  mon.observe(at(0.25), Celsius{55.0});
  mon.observe(at(0.5), Celsius{kNan});  // breaks the run
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(mon.observe(at(0.75 + 0.25 * i), Celsius{55.0}), SensorState::kOk);
  }
  EXPECT_FALSE(mon.failed());
}

TEST(SensorHealthMonitor, StalenessTracksObservationSchedule) {
  SensorHealthMonitor mon{quick()};
  EXPECT_TRUE(mon.stale(at(0.0)));  // never observed
  mon.observe(at(1.0), Celsius{50.0});
  EXPECT_FALSE(mon.stale(at(1.25)));
  EXPECT_TRUE(mon.stale(at(4.0)));  // default deadline 2 s
}

TEST(SensorHealthMonitor, StuckDisabledWithZeroThreshold) {
  SensorHealthConfig cfg = quick();
  cfg.stuck_samples = 0;  // noiseless-simulation escape hatch
  SensorHealthMonitor mon{cfg};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mon.observe(at(0.25 * i), Celsius{55.0}), SensorState::kOk);
  }
  EXPECT_FALSE(mon.failed());
}

TEST(SensorHealthMonitor, ResetKeepsCounters) {
  SensorHealthMonitor mon{quick()};
  for (int i = 0; i < 4; ++i) {
    mon.observe(at(0.25 * i), Celsius{55.0});
  }
  ASSERT_TRUE(mon.failed());
  mon.reset();
  EXPECT_FALSE(mon.failed());
  EXPECT_FALSE(mon.last_good().has_value());
  EXPECT_EQ(mon.stats().failures, 1u);  // history gone, accounting kept
}

TEST(SensorHealthMonitorDeath, RejectsEmptyPlausibleBand) {
  SensorHealthConfig cfg;
  cfg.min_plausible = Celsius{100.0};
  cfg.max_plausible = Celsius{0.0};
  EXPECT_DEATH(SensorHealthMonitor{cfg}, "band");
}

TEST(SensorHealthMonitorDeath, RejectsZeroRecovery) {
  SensorHealthConfig cfg;
  cfg.recovery_samples = 0;
  EXPECT_DEATH(SensorHealthMonitor{cfg}, "recovery");
}

}  // namespace
}  // namespace thermctl::core
