#include "core/unified_controller.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

UnifiedConfig paper_unified(int pp) {
  UnifiedConfig cfg;
  cfg.pp = PolicyParam{pp};
  cfg.tdvfs.threshold = Celsius{51.0};
  return cfg;
}

TEST(Unified, OnePpFlowsToBothTechniques) {
  ControllerRig rig;
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, paper_unified(25)};
  EXPECT_EQ(uc.fan().array().policy().value, 25);
  EXPECT_EQ(uc.dvfs().array().policy().value, 25);
}

TEST(Unified, FanActsBelowThresholdDvfsDoesNot) {
  ControllerRig rig;
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, paper_unified(50)};
  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 40; ++i) {  // rise to 48 °C — warm but under threshold
    now.advance_us(250000);
    temp += 0.2;
    rig.tick(uc, temp, now);
  }
  EXPECT_GT(uc.fan().current_index(), 0u);          // out-of-band responded
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);  // in-band untouched
  EXPECT_DOUBLE_EQ(uc.first_dvfs_trigger_s(), -1.0);
}

TEST(Unified, DvfsEngagesWhenFanInsufficient) {
  ControllerRig rig;
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, paper_unified(50)};
  rig.run_flat(uc, 54.0, 24);  // hot despite the fan (scripted temperature)
  EXPECT_LT(rig.cpu.frequency().value(), 2.4);
  EXPECT_GT(uc.first_dvfs_trigger_s(), 0.0);
}

TEST(Unified, SetPolicyUpdatesBoth) {
  ControllerRig rig;
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, paper_unified(50)};
  uc.set_policy(PolicyParam{80});
  EXPECT_EQ(uc.fan().array().policy().value, 80);
  EXPECT_EQ(uc.dvfs().array().policy().value, 80);
}

TEST(Unified, SharedSensorStreamKeepsWindowsInPhase) {
  // Both sub-controllers complete rounds on the same samples; the fan must
  // retarget before or at the same tick the DVFS trigger fires (fan-first
  // ordering within on_sample).
  ControllerRig rig;
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, paper_unified(50)};
  SimTime now;
  double temp = 46.0;
  for (int i = 0; i < 60 && uc.first_dvfs_trigger_s() < 0.0; ++i) {
    now.advance_us(250000);
    temp += 0.15;
    rig.tick(uc, temp, now);
  }
  ASSERT_GT(uc.first_dvfs_trigger_s(), 0.0);
  ASSERT_FALSE(uc.fan().events().empty());
  EXPECT_LE(uc.fan().events().front().time_s, uc.first_dvfs_trigger_s());
}

}  // namespace
}  // namespace thermctl::core
