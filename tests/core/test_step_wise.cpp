#include "core/step_wise.hpp"

#include <gtest/gtest.h>

#include "sysfs/thermal_zone.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::core {
namespace {

struct StepWiseRig {
  sysfs::VirtualFs fs;
  double truth = 45.0;
  sysfs::ThermalZone zone{fs, "/sys/class/thermal", 0, "test",
                          [this] { return Celsius{truth}; }};
  double fan_duty = 10.0;
  sysfs::FanCoolingAdapter fan{[this](DutyCycle d) {
                                 fan_duty = d.percent();
                                 return true;
                               },
                               DutyCycle{10.0}, DutyCycle{100.0}, 9};

  StepWiseRig() {
    zone.add_trip({Celsius{51.0}, sysfs::TripType::kPassive});
    zone.add_trip({Celsius{90.0}, sysfs::TripType::kCritical});
    zone.bind(&fan);
  }

  void feed(StepWiseGovernor& gov, std::initializer_list<double> temps) {
    SimTime now;
    for (double t : temps) {
      truth = t;
      now.advance_us(250000);
      gov.on_sample(now);
    }
  }
};

TEST(StepWise, HoldsBelowTrip) {
  StepWiseRig rig;
  StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {45.0, 45.5, 46.0, 45.0, 44.0});
  EXPECT_EQ(gov.steps_up(), 0u);
  EXPECT_EQ(rig.fan.cooling_state(), 0);
}

TEST(StepWise, StepsUpWhenAboveTripAndRising) {
  StepWiseRig rig;
  StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {50.0, 51.5, 52.0, 52.5});
  EXPECT_GE(gov.steps_up(), 2u);
  EXPECT_GE(rig.fan.cooling_state(), 2);
  EXPECT_GT(rig.fan_duty, 10.0);
}

TEST(StepWise, HoldsWhenAboveTripButStable) {
  StepWiseRig rig;
  StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {52.0, 52.5});  // climb above trip
  const long state = rig.fan.cooling_state();
  rig.feed(gov, {52.5, 52.5, 52.5, 52.5});  // flat
  EXPECT_EQ(rig.fan.cooling_state(), state);
}

TEST(StepWise, StepsDownWhenBelowTripAndFalling) {
  StepWiseRig rig;
  StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {51.5, 52.0, 52.5, 53.0});  // wind up
  const long peak = rig.fan.cooling_state();
  ASSERT_GT(peak, 0);
  rig.feed(gov, {50.0, 49.0, 48.0, 47.0});  // cool and falling
  EXPECT_LT(rig.fan.cooling_state(), peak);
  EXPECT_GE(gov.steps_down(), 1u);
}

TEST(StepWise, NeverExceedsDeviceBounds) {
  StepWiseRig rig;
  StepWiseGovernor gov{rig.zone};
  SimTime now;
  for (int i = 0; i < 50; ++i) {  // relentless rise
    rig.truth = 52.0 + i;
    now.advance_us(250000);
    gov.on_sample(now);
  }
  EXPECT_EQ(rig.fan.cooling_state(), rig.fan.max_cooling_state());
  for (int i = 0; i < 50; ++i) {  // relentless fall
    rig.truth = 50.0 - i * 0.5;
    now.advance_us(250000);
    gov.on_sample(now);
  }
  EXPECT_EQ(rig.fan.cooling_state(), 0);
}

TEST(StepWise, CriticalTripCountedOnce) {
  StepWiseRig rig;
  StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {89.0, 91.0, 92.0, 93.0});  // one sustained crossing
  EXPECT_EQ(gov.critical_crossings(), 1);
  rig.feed(gov, {85.0, 91.0});  // drop below, cross again
  EXPECT_EQ(gov.critical_crossings(), 2);
}

TEST(StepWise, DrivesMultipleDevicesTogether) {
  StepWiseRig rig;
  long dvfs_khz = 2400000;
  sysfs::DvfsCoolingAdapter dvfs{[&dvfs_khz](long khz) {
                                   dvfs_khz = khz;
                                   return true;
                                 },
                                 {2400000, 2200000, 2000000, 1800000, 1000000}};
  rig.zone.bind(&dvfs);
  StepWiseGovernor gov{rig.zone};
  rig.feed(gov, {51.5, 52.0, 52.5});
  EXPECT_GT(rig.fan.cooling_state(), 0);
  EXPECT_GT(dvfs.cooling_state(), 0);
  EXPECT_LT(dvfs_khz, 2400000);
}

}  // namespace
}  // namespace thermctl::core
