#include "core/idle_injection.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"
#include "core/unified_controller.hpp"
#include "sysfs/powerclamp.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

struct ClampControllerRig : ControllerRig {
  sysfs::PowerClampDevice clamp{fs, "/sys/class/thermal", 0, cpu};
};

IdleInjectionConfig cfg_at(int pp, double threshold = 56.0) {
  IdleInjectionConfig cfg;
  cfg.pp = PolicyParam{pp};
  cfg.threshold = Celsius{threshold};
  return cfg;
}

TEST(IdleInjection, InertBelowThreshold) {
  ClampControllerRig rig;
  IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(50)};
  rig.run_flat(ctl, 54.0, 60);
  EXPECT_FALSE(rig.cpu.idle_injector().active());
  EXPECT_TRUE(ctl.events().empty());
}

TEST(IdleInjection, ClampsWhenConsistentlyHot) {
  ClampControllerRig rig;
  IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(50)};
  rig.run_flat(ctl, 58.0, 16);  // 4 rounds at 58 degC
  EXPECT_TRUE(rig.cpu.idle_injector().active());
  ASSERT_FALSE(ctl.events().empty());
  EXPECT_GT(ctl.events().front().to_percent, 0);
}

TEST(IdleInjection, SingleHotRoundIgnored) {
  ClampControllerRig rig;
  IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(50)};
  rig.run_flat(ctl, 54.0, 8);
  rig.run_flat(ctl, 58.0, 4);  // one round only
  rig.run_flat(ctl, 54.0, 8);
  EXPECT_FALSE(rig.cpu.idle_injector().active());
}

TEST(IdleInjection, ReleasesWhenCool) {
  ClampControllerRig rig;
  IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(50)};
  rig.run_flat(ctl, 58.0, 24);
  ASSERT_TRUE(rig.cpu.idle_injector().active());
  // Below threshold − hysteresis (54) for release_rounds (8 rounds).
  rig.run_flat(ctl, 50.0, 40);
  EXPECT_FALSE(rig.cpu.idle_injector().active());
  EXPECT_EQ(ctl.current_index(), 0u);
}

TEST(IdleInjection, RepeatedTriggersDeepenClamp) {
  ClampControllerRig rig;
  IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(50)};
  rig.run_flat(ctl, 60.0, 80);  // sustained severe heat
  EXPECT_GE(ctl.current_percent(), 15);
}

TEST(IdleInjection, SmallerPpClampsHarderPerTrigger) {
  auto percent_after = [](int pp) {
    ClampControllerRig rig;
    IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(pp)};
    rig.run_flat(ctl, 59.0, 40);
    return ctl.current_percent();
  };
  EXPECT_GE(percent_after(25), percent_after(75));
}

TEST(IdleInjection, SetPolicyRefills) {
  ClampControllerRig rig;
  IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(75)};
  ctl.set_policy(PolicyParam{25});
  EXPECT_EQ(ctl.array().policy().value, 25);
}

TEST(IdleInjection, ModesAreLegalClampStates) {
  ClampControllerRig rig;
  IdleInjectionController ctl{*rig.hwmon, rig.clamp, cfg_at(50)};
  for (std::size_t i = 0; i < ctl.array().size(); ++i) {
    const double mode = ctl.array().mode(i);
    EXPECT_GE(mode, 0.0);
    EXPECT_LE(mode, static_cast<double>(rig.clamp.max_state()));
  }
  EXPECT_DOUBLE_EQ(ctl.array().least_effective(), 0.0);
  EXPECT_DOUBLE_EQ(ctl.array().most_effective(),
                   static_cast<double>(rig.clamp.max_state()));
}

TEST(UnifiedThreeTechniques, StagedEscalation) {
  ClampControllerRig rig;
  UnifiedConfig cfg;
  cfg.pp = PolicyParam{50};
  cfg.tdvfs.threshold = Celsius{51.0};
  cfg.enable_idle_injection = true;
  cfg.idle.threshold = Celsius{56.0};
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, rig.clamp, cfg};
  ASSERT_TRUE(uc.has_idle_injection());

  // Warm (52): DVFS engages, clamp does not.
  rig.run_flat(uc, 52.0, 24);
  EXPECT_LT(rig.cpu.frequency().value(), 2.4);
  EXPECT_FALSE(rig.cpu.idle_injector().active());

  // Severe (58): the clamp backstops.
  rig.run_flat(uc, 58.0, 24);
  EXPECT_TRUE(rig.cpu.idle_injector().active());
}

TEST(UnifiedThreeTechniques, OnePpFlowsToAllThree) {
  ClampControllerRig rig;
  UnifiedConfig cfg;
  cfg.pp = PolicyParam{30};
  cfg.enable_idle_injection = true;
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, rig.clamp, cfg};
  EXPECT_EQ(uc.fan().array().policy().value, 30);
  EXPECT_EQ(uc.dvfs().array().policy().value, 30);
  EXPECT_EQ(uc.idle_injection().array().policy().value, 30);
  uc.set_policy(PolicyParam{70});
  EXPECT_EQ(uc.idle_injection().array().policy().value, 70);
}

TEST(UnifiedThreeTechniques, TwoArgConstructorHasNoClamp) {
  ClampControllerRig rig;
  UnifiedConfig cfg;
  UnifiedController uc{*rig.hwmon, *rig.cpufreq, cfg};
  EXPECT_FALSE(uc.has_idle_injection());
}

}  // namespace
}  // namespace thermctl::core
