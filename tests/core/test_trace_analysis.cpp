#include "core/trace_analysis.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace thermctl::core {
namespace {

// 4 Hz sample spacing throughout.
constexpr double kDt = 0.25;

std::vector<double> concat(std::initializer_list<std::vector<double>> parts) {
  std::vector<double> out;
  for (const auto& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<double> flat(double level, int n) { return std::vector<double>(n, level); }

std::vector<double> ramp(double from, double to, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(from + (to - from) * i / (n - 1));
  }
  return out;
}

std::vector<double> square(double mean, double amp, int n, int half_period) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(mean + ((i / half_period) % 2 == 0 ? amp : -amp));
  }
  return out;
}

TEST(TraceAnalysis, EmptyTraceIsEmpty) {
  const TraceAnalysis a = analyze_trace({}, kDt);
  EXPECT_TRUE(a.segments.empty());
}

TEST(TraceAnalysis, FlatTraceIsOneStableSegment) {
  const auto trace = flat(45.0, 200);
  const TraceAnalysis a = analyze_trace(trace, kDt);
  ASSERT_EQ(a.segments.size(), 1u);
  EXPECT_EQ(a.segments[0].behaviour, ThermalBehaviour::kStable);
  EXPECT_NEAR(a.fraction_stable, 1.0, 1e-9);
  EXPECT_NEAR(a.trending_delta_c, 0.0, 1e-9);
}

TEST(TraceAnalysis, DetectsSuddenRise) {
  // Idle, then a steep 10 degC climb over 20 s (0.5 degC/s), then plateau.
  const auto trace = concat({flat(40.0, 100), ramp(40.0, 50.0, 80), flat(50.0, 100)});
  const TraceAnalysis a = analyze_trace(trace, kDt);
  EXPECT_GT(a.fraction_sudden, 0.1);
  // The net trending movement accounts for (most of) the 10 degC climb.
  EXPECT_GT(a.trending_delta_c, 6.0);
  bool has_sudden = false;
  for (const auto& seg : a.segments) {
    if (seg.behaviour == ThermalBehaviour::kSudden) {
      has_sudden = true;
      EXPECT_GT(seg.temp_end, seg.temp_begin + 2.0);
    }
  }
  EXPECT_TRUE(has_sudden);
}

TEST(TraceAnalysis, DetectsGradualDrift) {
  // 0.1 degC/s for 2 minutes: below the sudden threshold, above gradual.
  const auto trace = concat({flat(45.0, 80), ramp(45.0, 57.0, 480), flat(57.0, 80)});
  const TraceAnalysis a = analyze_trace(trace, kDt);
  EXPECT_GT(a.fraction_gradual, 0.4);
}

TEST(TraceAnalysis, DetectsJitterWithoutTrendContribution) {
  const auto trace = concat({flat(48.0, 80), square(48.0, 1.2, 200, 4), flat(48.0, 80)});
  const TraceAnalysis a = analyze_trace(trace, kDt);
  EXPECT_GT(a.fraction_jitter, 0.3);
  // Jitter moves no net temperature (§3.1: "type III does not").
  EXPECT_NEAR(a.trending_delta_c, 0.0, 1.5);
}

TEST(TraceAnalysis, SegmentsPartitionTheTrace) {
  const auto trace = concat({flat(40.0, 60), ramp(40.0, 52.0, 60), square(52.0, 1.0, 80, 4),
                             ramp(52.0, 44.0, 200)});
  const TraceAnalysis a = analyze_trace(trace, kDt);
  ASSERT_FALSE(a.segments.empty());
  EXPECT_EQ(a.segments.front().begin, 0u);
  EXPECT_EQ(a.segments.back().end, trace.size());
  for (std::size_t i = 1; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].begin, a.segments[i - 1].end);
    EXPECT_NE(a.segments[i].behaviour, a.segments[i - 1].behaviour);
  }
  const double total =
      a.fraction_stable + a.fraction_sudden + a.fraction_gradual + a.fraction_jitter;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TraceAnalysis, DebounceMergesFlicker) {
  TraceAnalysisConfig cfg;
  cfg.min_segment_samples = 16;
  const auto trace = concat({flat(45.0, 200), ramp(45.0, 45.8, 6), flat(45.8, 200)});
  const TraceAnalysis a = analyze_trace(trace, kDt, cfg);
  // The 6-sample blip cannot form its own segment.
  for (const auto& seg : a.segments) {
    EXPECT_GE(seg.end - seg.begin, 7u);
  }
}

TEST(TraceAnalysis, RenderListsSegmentsAndShares) {
  const auto trace = concat({flat(40.0, 100), ramp(40.0, 50.0, 80), flat(50.0, 100)});
  const std::string text = render_analysis(analyze_trace(trace, kDt));
  EXPECT_NE(text.find("sudden"), std::string::npos);
  EXPECT_NE(text.find("time share"), std::string::npos);
  EXPECT_NE(text.find("net trending movement"), std::string::npos);
}

TEST(TraceAnalysisDeath, RejectsNonPositiveDt) {
  const std::vector<double> trace{1.0, 2.0};
  EXPECT_DEATH(analyze_trace(trace, 0.0), "positive");
}

}  // namespace
}  // namespace thermctl::core
