// Fault-aware degradation paths of the dynamic fan controller and tDVFS:
// fail-safe cooling on confirmed sensor failure, frequency hold instead of
// oscillation, and restoration through the consistency-count machinery.
#include <gtest/gtest.h>

#include "controller_rig.hpp"
#include "core/fan_policy.hpp"
#include "core/tdvfs.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

/// Short confirmation thresholds so tests stay compact.
SensorHealthConfig quick_health() {
  SensorHealthConfig h;
  h.stuck_samples = 4;
  h.reject_samples = 3;
  h.recovery_samples = 2;
  return h;
}

/// Alternates between two adjacent sensor codes — the healthy-jitter
/// signature that never looks stuck.
double jitter(double base, int i) { return base + 0.25 * (i % 2); }

TEST(FaultAwareFan, StuckSensorTriggersFailsafeCooling) {
  ControllerRig rig;
  FanControlConfig fc;
  fc.fault_aware = true;
  fc.health = quick_health();
  DynamicFanController fan{*rig.hwmon, fc};

  SimTime now;
  // Healthy warmup: jittering codes, no failure.
  for (int i = 0; i < 8; ++i) {
    now.advance_us(250000);
    rig.tick(fan, jitter(45.0, i), now);
  }
  ASSERT_FALSE(fan.in_failsafe());

  // Sensor freezes (identical readings) — confirmed after stuck_samples.
  rig.sensor.inject_stuck_fault();
  for (int i = 0; i < 4; ++i) {
    now.advance_us(250000);
    rig.tick(fan, 45.0, now);
  }
  EXPECT_TRUE(fan.in_failsafe());
  EXPECT_EQ(fan.failsafe_entries(), 1u);
  // Fail-safe means the array's most effective mode is on the chip.
  EXPECT_NEAR(rig.chip.output_duty().percent(), fan.array().most_effective(), 0.5);

  // Recovery: readings move and jitter again → controller resumes from the
  // top. (The first value must differ from the frozen one, or the identical
  // run would just keep growing.)
  rig.sensor.clear_fault();
  for (int i = 0; i < 2; ++i) {
    now.advance_us(250000);
    rig.tick(fan, jitter(46.0, i), now);
  }
  EXPECT_FALSE(fan.in_failsafe());
  EXPECT_EQ(fan.failsafe_exits(), 1u);
  EXPECT_EQ(fan.current_index(), fan.array().size() - 1);
}

TEST(FaultAwareFan, FailsafeWriteRetriesThroughBusFault) {
  ControllerRig rig;
  FanControlConfig fc;
  fc.fault_aware = true;
  fc.health = quick_health();
  DynamicFanController fan{*rig.hwmon, fc};

  SimTime now;
  for (int i = 0; i < 8; ++i) {
    now.advance_us(250000);
    rig.tick(fan, jitter(45.0, i), now);
  }
  // Sensor failure coincides with a persistent bus fault: the fail-safe
  // duty cannot land yet, but the controller keeps trying.
  rig.bus.inject_bus_fault();
  rig.sensor.inject_stuck_fault();
  for (int i = 0; i < 6; ++i) {
    now.advance_us(250000);
    rig.tick(fan, 45.0, now);
  }
  EXPECT_TRUE(fan.in_failsafe());
  EXPECT_LT(rig.chip.output_duty().percent(), fan.array().most_effective());
  // Bus recovers → the very next tick lands the fail-safe duty.
  rig.bus.clear_bus_fault();
  now.advance_us(250000);
  rig.tick(fan, 45.0, now);
  EXPECT_NEAR(rig.chip.output_duty().percent(), fan.array().most_effective(), 0.5);
}

TEST(FaultAwareFan, ZeroFaultRunsMatchBlindController) {
  // With no faults injected, the gated controller must act identically to
  // the blind one — same duty trace, same index, same retarget count.
  ControllerRig blind_rig;
  ControllerRig aware_rig;
  FanControlConfig blind_cfg;
  FanControlConfig aware_cfg;
  aware_cfg.fault_aware = true;
  DynamicFanController blind{*blind_rig.hwmon, blind_cfg};
  DynamicFanController aware{*aware_rig.hwmon, aware_cfg};

  SimTime now;
  for (int i = 0; i < 120; ++i) {
    now.advance_us(250000);
    // A ramp with jitter: enough variation to exercise retargets.
    const double temp = 40.0 + 0.15 * i + 0.25 * (i % 3);
    blind_rig.tick(blind, temp, now);
    aware_rig.tick(aware, temp, now);
    ASSERT_EQ(blind.current_index(), aware.current_index()) << "tick " << i;
    ASSERT_DOUBLE_EQ(blind_rig.chip.output_duty().percent(),
                     aware_rig.chip.output_duty().percent())
        << "tick " << i;
  }
  EXPECT_EQ(blind.retarget_count(), aware.retarget_count());
  EXPECT_EQ(aware.failsafe_entries(), 0u);
}

TEST(FaultAwareTdvfs, StuckHotSensorHoldsInsteadOfScaling) {
  ControllerRig rig;
  TdvfsConfig tc;
  tc.fault_aware = true;
  tc.health = quick_health();
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, tc};

  SimTime now;
  // Sensor freezes at a value above the 51 °C threshold. A blind daemon
  // would eventually scale down on this; the gated one must hold.
  rig.sensor.inject_stuck_fault();
  for (int i = 0; i < 60; ++i) {
    now.advance_us(250000);
    rig.tick(daemon, 60.0, now);
  }
  EXPECT_TRUE(daemon.holding());
  EXPECT_EQ(daemon.hold_entries(), 1u);
  EXPECT_GT(daemon.held_ticks(), 0u);
  EXPECT_EQ(daemon.current_index(), 0u);
  EXPECT_TRUE(daemon.events().empty());

  // Recovery at a cool temperature: resume control, still at full speed.
  rig.sensor.clear_fault();
  for (int i = 0; i < 2; ++i) {
    now.advance_us(250000);
    rig.tick(daemon, jitter(45.0, i), now);
  }
  EXPECT_FALSE(daemon.holding());
  EXPECT_EQ(daemon.current_index(), 0u);
}

TEST(FaultAwareTdvfs, BlindDaemonScalesOnTheSameStuckStream) {
  // Control experiment for the test above: fault-awareness off, same stuck
  // stream → the daemon does scale down, proving the hold is load-bearing.
  ControllerRig rig;
  TdvfsConfig tc;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, tc};

  SimTime now;
  rig.sensor.inject_stuck_fault();
  for (int i = 0; i < 60; ++i) {
    now.advance_us(250000);
    rig.tick(daemon, 60.0, now);
  }
  EXPECT_FALSE(daemon.events().empty());
  EXPECT_GT(daemon.current_index(), 0u);
}

}  // namespace
}  // namespace thermctl::core
