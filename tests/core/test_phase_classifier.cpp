#include "core/phase_classifier.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace thermctl::core {
namespace {

TEST(PhaseClassifier, StableBeforeEnoughSamples) {
  PhaseClassifier c;
  for (int i = 0; i < 5; ++i) {
    c.add_sample(Celsius{40.0});
  }
  EXPECT_EQ(c.classify().behaviour, ThermalBehaviour::kStable);
}

TEST(PhaseClassifier, ConstantIsStable) {
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{50.0});
  }
  const auto report = c.classify();
  EXPECT_EQ(report.behaviour, ThermalBehaviour::kStable);
  EXPECT_NEAR(report.trend_c_per_s, 0.0, 1e-9);
}

TEST(PhaseClassifier, SteepRampIsSudden) {
  // Type I: 0.5 °C/s sustained — a thermal step response.
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{40.0 + 0.5 * 0.25 * i});
  }
  const auto report = c.classify();
  EXPECT_EQ(report.behaviour, ThermalBehaviour::kSudden);
  EXPECT_NEAR(report.trend_c_per_s, 0.5, 0.01);
}

TEST(PhaseClassifier, SuddenDropAlsoSudden) {
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{60.0 - 0.6 * 0.25 * i});
  }
  EXPECT_EQ(c.classify().behaviour, ThermalBehaviour::kSudden);
}

TEST(PhaseClassifier, SlowDriftIsGradual) {
  // Type II: 0.1 °C/s — heatsink-mass charging.
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{45.0 + 0.1 * 0.25 * i});
  }
  EXPECT_EQ(c.classify().behaviour, ThermalBehaviour::kGradual);
}

TEST(PhaseClassifier, OscillationWithoutTrendIsJitter) {
  // Type III: ±1 °C square wave around 50 °C.
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{50.0 + ((i / 2) % 2 == 0 ? 1.0 : -1.0)});
  }
  const auto report = c.classify();
  EXPECT_EQ(report.behaviour, ThermalBehaviour::kJitter);
  EXPECT_GT(report.swing_c, 1.5);
  EXPECT_LT(std::abs(report.trend_c_per_s), 0.05);
}

TEST(PhaseClassifier, TinyQuantizationNoiseIsStableNotJitter) {
  // 0.25 °C toggles are below the jitter swing threshold — the controller
  // should see a stable signal, matching the paper's non-response regions.
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{50.0 + (i % 2 == 0 ? 0.25 : 0.0)});
  }
  EXPECT_EQ(c.classify().behaviour, ThermalBehaviour::kStable);
}

TEST(PhaseClassifier, ReversalRateHighForJitter) {
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{50.0 + (i % 2 == 0 ? 1.0 : -1.0)});
  }
  EXPECT_GT(c.classify().reversal_rate, 0.9);
}

TEST(PhaseClassifier, ResetForgets) {
  PhaseClassifier c;
  for (int i = 0; i < 32; ++i) {
    c.add_sample(Celsius{40.0 + i});
  }
  c.reset();
  EXPECT_EQ(c.fill(), 0u);
  EXPECT_EQ(c.classify().behaviour, ThermalBehaviour::kStable);
}

TEST(PhaseClassifier, ToStringNames) {
  EXPECT_EQ(to_string(ThermalBehaviour::kSudden), "sudden");
  EXPECT_EQ(to_string(ThermalBehaviour::kGradual), "gradual");
  EXPECT_EQ(to_string(ThermalBehaviour::kJitter), "jitter");
  EXPECT_EQ(to_string(ThermalBehaviour::kStable), "stable");
}

}  // namespace
}  // namespace thermctl::core
