#include "core/fan_policy.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

FanControlConfig cfg_with_pp(int pp, double max_duty = 100.0) {
  FanControlConfig cfg;
  cfg.pp = PolicyParam{pp};
  cfg.max_duty = DutyCycle{max_duty};
  return cfg;
}

TEST(DynamicFan, FirstTickTakesOverAtLeastEffectiveMode) {
  ControllerRig rig;
  DynamicFanController fan{*rig.hwmon, cfg_with_pp(50)};
  rig.tick(fan, 40.0, SimTime::from_ms(250));
  EXPECT_EQ(fan.current_index(), 0u);
  EXPECT_NEAR(rig.chip.output_duty().percent(), 1.0, 0.5);
}

TEST(DynamicFan, RisingTemperatureRaisesDuty) {
  ControllerRig rig;
  DynamicFanController fan{*rig.hwmon, cfg_with_pp(50)};
  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 40; ++i) {  // 10 s of +0.4 °C/s rise
    now.advance_us(250000);
    temp += 0.1;
    rig.tick(fan, temp, now);
  }
  EXPECT_GT(fan.current_index(), 5u);
  EXPECT_GT(rig.chip.output_duty().percent(), 5.0);
  EXPECT_GT(fan.retarget_count(), 2u);
}

TEST(DynamicFan, FallingTemperatureLowersDuty) {
  ControllerRig rig;
  DynamicFanController fan{*rig.hwmon, cfg_with_pp(50)};
  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 40; ++i) {
    now.advance_us(250000);
    temp += 0.15;
    rig.tick(fan, temp, now);
  }
  const std::size_t peak = fan.current_index();
  for (int i = 0; i < 40; ++i) {
    now.advance_us(250000);
    temp -= 0.15;
    rig.tick(fan, temp, now);
  }
  EXPECT_LT(fan.current_index(), peak);
}

TEST(DynamicFan, JitterDoesNotMoveMode) {
  // §4.2/Fig. 5 marker ①: the controller "does not respond to jitter".
  ControllerRig rig;
  DynamicFanController fan{*rig.hwmon, cfg_with_pp(50)};
  SimTime now;
  rig.run_flat(fan, 45.0, 8, now);
  const std::size_t idx = fan.current_index();
  const auto retargets_before = fan.retarget_count();
  // Alternate ±0.25 °C (sensor-quantization-scale jitter) for 20 s.
  double sign = 1.0;
  now = SimTime::from_ms(8 * 250);
  for (int i = 0; i < 80; ++i) {
    now.advance_us(250000);
    rig.tick(fan, 45.0 + 0.25 * sign, now);
    sign = -sign;
  }
  EXPECT_EQ(fan.current_index(), idx);
  EXPECT_EQ(fan.retarget_count(), retargets_before);
}

TEST(DynamicFan, GradualTrendMovesModeViaLevel2) {
  // A drift too slow for Δt_L1 must still move the fan through Δt_L2 —
  // the red-circle behaviour in Fig. 5.
  ControllerRig rig;
  FanControlConfig cfg = cfg_with_pp(50);
  DynamicFanController fan{*rig.hwmon, cfg};
  SimTime now;
  double temp = 42.0;
  bool used_level2 = false;
  for (int i = 0; i < 200; ++i) {  // 50 s at +0.08 °C/s
    now.advance_us(250000);
    temp += 0.02;
    rig.tick(fan, temp, now);
  }
  for (const FanEvent& e : fan.events()) {
    if (e.used_level2) {
      used_level2 = true;
    }
  }
  EXPECT_TRUE(used_level2);
  EXPECT_GT(fan.current_index(), 0u);
}

TEST(DynamicFan, SmallerPpYieldsHigherDutyForSameTrajectory) {
  // Fig. 5's headline: Pp=25 averages ~70% duty, Pp=75 ~36%.
  auto run = [](int pp) {
    ControllerRig rig;
    DynamicFanController fan{*rig.hwmon, cfg_with_pp(pp)};
    SimTime now;
    double temp = 38.0;
    double duty_sum = 0.0;
    int samples = 0;
    for (int i = 0; i < 160; ++i) {  // 40 s: 25 s rise then hold
      now.advance_us(250000);
      if (i < 100) {
        temp += 0.12;
      }
      rig.tick(fan, temp, now);
      duty_sum += rig.chip.output_duty().percent();
      ++samples;
    }
    return duty_sum / samples;
  };
  const double duty_25 = run(25);
  const double duty_50 = run(50);
  const double duty_75 = run(75);
  EXPECT_GT(duty_25, duty_50);
  EXPECT_GT(duty_50, duty_75);
}

TEST(DynamicFan, MaxDutyCapsModes) {
  ControllerRig rig;
  DynamicFanController fan{*rig.hwmon, cfg_with_pp(50, 25.0)};
  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 200; ++i) {  // relentless rise
    now.advance_us(250000);
    temp += 0.2;
    rig.tick(fan, temp, now);
  }
  EXPECT_NEAR(fan.current_duty().percent(), 25.0, 0.5);
  EXPECT_LE(rig.chip.output_duty().percent(), 25.5);
}

TEST(DynamicFan, SetPolicyRetunesAndClearsHistory) {
  ControllerRig rig;
  DynamicFanController fan{*rig.hwmon, cfg_with_pp(75)};
  rig.run_flat(fan, 45.0, 8);
  fan.set_policy(PolicyParam{25});
  EXPECT_EQ(fan.array().policy().value, 25);
}

TEST(DynamicFan, EventsCarryTimestamps) {
  ControllerRig rig;
  DynamicFanController fan{*rig.hwmon, cfg_with_pp(50)};
  SimTime now;
  double temp = 40.0;
  for (int i = 0; i < 40; ++i) {
    now.advance_us(250000);
    temp += 0.2;
    rig.tick(fan, temp, now);
  }
  ASSERT_FALSE(fan.events().empty());
  EXPECT_GT(fan.events().front().time_s, 0.0);
  EXPECT_GT(fan.events().front().to_duty, fan.events().front().from_duty);
}

TEST(StaticFan, AppliesFig1CurveAndAutoMode) {
  ControllerRig rig;
  StaticFanPolicy policy{rig.driver, StaticFanPolicy::Curve{}, DutyCycle{100.0}};
  ASSERT_TRUE(policy.apply());
  EXPECT_FALSE(rig.chip.manual_mode());
  rig.chip.set_measured_temperature(Celsius{38.0});
  EXPECT_NEAR(rig.chip.output_duty().percent(), 10.0, 1.0);
  rig.chip.set_measured_temperature(Celsius{82.0});
  EXPECT_NEAR(rig.chip.output_duty().percent(), 100.0, 0.5);
}

TEST(StaticFan, MaxDutyCapApplies) {
  ControllerRig rig;
  StaticFanPolicy policy{rig.driver, StaticFanPolicy::Curve{}, DutyCycle{75.0}};
  ASSERT_TRUE(policy.apply());
  rig.chip.set_measured_temperature(Celsius{90.0});
  EXPECT_NEAR(rig.chip.output_duty().percent(), 75.0, 0.5);
}

TEST(ConstantFan, PinsDuty) {
  ControllerRig rig;
  ConstantFanPolicy policy{*rig.hwmon, DutyCycle{75.0}};
  ASSERT_TRUE(policy.apply());
  EXPECT_NEAR(rig.chip.output_duty().percent(), 75.0, 0.5);
  rig.chip.set_measured_temperature(Celsius{90.0});
  EXPECT_NEAR(rig.chip.output_duty().percent(), 75.0, 0.5);  // unmoved
}

}  // namespace
}  // namespace thermctl::core
