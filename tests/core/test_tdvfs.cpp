#include "core/tdvfs.hpp"

#include <gtest/gtest.h>

#include "controller_rig.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

TdvfsConfig paper_cfg(int pp = 50) {
  TdvfsConfig cfg;
  cfg.pp = PolicyParam{pp};
  cfg.threshold = Celsius{51.0};
  cfg.consistency_rounds = 3;
  return cfg;
}

TEST(Tdvfs, NoActionBelowThreshold) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 49.0, 100);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
  EXPECT_TRUE(daemon.events().empty());
  EXPECT_EQ(rig.cpu.transition_count(), 0u);
}

TEST(Tdvfs, ScalesDownWhenConsistentlyAboveThreshold) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  // 3 consistent rounds = 12 samples at 53 °C.
  rig.run_flat(daemon, 53.0, 16);
  EXPECT_LT(rig.cpu.frequency().value(), 2.4);
  EXPECT_FALSE(daemon.events().empty());
}

TEST(Tdvfs, SingleHotRoundDoesNotTrigger) {
  // Fig. 8's red circle: short-term thermal behaviour gets no response.
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 49.0, 8);
  rig.run_flat(daemon, 53.0, 4);  // exactly one hot round
  rig.run_flat(daemon, 49.0, 8);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
  EXPECT_TRUE(daemon.events().empty());
}

TEST(Tdvfs, TwoHotRoundsStillNotEnoughAtThree) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 53.0, 8);  // two rounds
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
  rig.run_flat(daemon, 53.0, 4);  // third round triggers
  EXPECT_LT(rig.cpu.frequency().value(), 2.4);
}

TEST(Tdvfs, RestoresOriginalFrequencyWhenConsistentlyCool) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 54.0, 24);  // drive it down
  ASSERT_LT(rig.cpu.frequency().value(), 2.4);
  // Consistently below threshold − hysteresis (51 − 2 = 49) for the longer
  // restore window (10 rounds = 40 samples): 9 rounds is not yet enough.
  rig.run_flat(daemon, 47.0, 36);
  EXPECT_LT(rig.cpu.frequency().value(), 2.4);
  rig.run_flat(daemon, 47.0, 8);  // rounds 10-11: restore fires
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), 2.4);
  // The restore is a single jump to the original mode (index 0).
  EXPECT_EQ(daemon.current_index(), 0u);
}

TEST(Tdvfs, HysteresisBandHoldsState) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 54.0, 24);
  const double down = rig.cpu.frequency().value();
  ASSERT_LT(down, 2.4);
  // 50 °C sits inside (49, 51): neither counter accumulates.
  rig.run_flat(daemon, 50.0, 60);
  EXPECT_DOUBLE_EQ(rig.cpu.frequency().value(), down);
}

TEST(Tdvfs, RepeatedTriggersDescendTheLadder) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 56.0, 80);  // 20 rounds of sustained heat
  // Multiple triggers should have walked well down the frequency ladder.
  EXPECT_LE(rig.cpu.frequency().value(), 2.0);
  EXPECT_GE(daemon.events().size(), 2u);
}

TEST(Tdvfs, FewTransitionsComparedToSampleCount) {
  // Table 1's headline: 2-3 transitions per run, not one per interval.
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 53.0, 200);   // hot plateau
  rig.run_flat(daemon, 45.0, 200);   // cool plateau
  EXPECT_LE(rig.cpu.transition_count(), 6u);
}

TEST(Tdvfs, SmallerPpReachesLowerFrequency) {
  // Fig. 10: with Pp=25 the CPU lands at a lower frequency than Pp=75.
  auto final_freq = [](int pp) {
    ControllerRig rig;
    TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg(pp)};
    rig.run_flat(daemon, 55.0, 40);  // 10 hot rounds
    return rig.cpu.frequency().value();
  };
  EXPECT_LE(final_freq(25), final_freq(75));
}

TEST(Tdvfs, EventsRecordTransitions) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  rig.run_flat(daemon, 54.0, 24);
  ASSERT_FALSE(daemon.events().empty());
  const TdvfsEvent& e = daemon.events().front();
  EXPECT_DOUBLE_EQ(e.from_ghz, 2.4);
  EXPECT_LT(e.to_ghz, 2.4);
  EXPECT_GT(e.time_s, 0.0);
}

TEST(Tdvfs, CurrentTargetTracksArray) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg()};
  EXPECT_DOUBLE_EQ(daemon.current_target().value(), 2.4);
  rig.run_flat(daemon, 54.0, 24);
  EXPECT_DOUBLE_EQ(daemon.current_target().value(), rig.cpu.frequency().value());
}

TEST(Tdvfs, SetPolicyRefills) {
  ControllerRig rig;
  TdvfsDaemon daemon{*rig.hwmon, *rig.cpufreq, paper_cfg(75)};
  daemon.set_policy(PolicyParam{25});
  EXPECT_EQ(daemon.array().policy().value, 25);
}

}  // namespace
}  // namespace thermctl::core
