// ControlBank — batched family ticks must be indistinguishable from N
// independent controllers, window pooling must degrade gracefully on
// heterogeneous configs, and the phase wheel must actually spread round
// closes across ticks.
#include "core/control_bank.hpp"

#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_time.hpp"
#include "core/fan_policy.hpp"
#include "core/tdvfs.hpp"
#include "controller_rig.hpp"

namespace thermctl::core {
namespace {

using testing::ControllerRig;

TEST(FixedSlab, ConstructsInPlaceAndDestroysInReverse) {
  static std::vector<int> destroyed;
  struct Probe {
    int id;
    explicit Probe(int i) : id(i) {}
    Probe(const Probe&) = delete;
    ~Probe() { destroyed.push_back(id); }
  };
  destroyed.clear();
  {
    FixedSlab<Probe> slab{3};
    EXPECT_TRUE(slab.empty());
    Probe& a = slab.emplace_back(10);
    slab.emplace_back(11);
    slab.emplace_back(12);
    EXPECT_EQ(slab.size(), 3u);
    EXPECT_EQ(slab[0].id, 10);
    EXPECT_EQ(&slab[0], &a);  // stable addresses
  }
  EXPECT_EQ(destroyed, (std::vector<int>{12, 11, 10}));
}

TEST(ControlBank, BatchedFanTicksMatchStandaloneControllers) {
  // Three nodes with *different* temperature scripts, run once through a
  // bank (one tick_fans per step) and once as three standalone controllers
  // (three on_sample calls) — duty trajectories must agree exactly. This is
  // the unit-scale version of the oracle's batched-vs-per-node pairing.
  constexpr std::size_t kNodes = 3;
  std::vector<std::unique_ptr<ControllerRig>> bank_rigs;
  std::vector<std::unique_ptr<ControllerRig>> solo_rigs;
  for (std::size_t i = 0; i < kNodes; ++i) {
    bank_rigs.push_back(std::make_unique<ControllerRig>());
    solo_rigs.push_back(std::make_unique<ControllerRig>());
  }

  FanControlConfig cfg;
  ControlBank bank{kNodes, nullptr};  // no fleet SoA: per-object read path
  std::vector<std::unique_ptr<DynamicFanController>> solo;
  for (std::size_t i = 0; i < kNodes; ++i) {
    bank.emplace_fan(i, *bank_rigs[i]->hwmon, cfg);
    solo.push_back(std::make_unique<DynamicFanController>(*solo_rigs[i]->hwmon, cfg));
  }
  ASSERT_EQ(bank.fan_count(), kNodes);

  SimTime now;
  for (int step = 0; step < 200; ++step) {
    now.advance_us(250000);
    for (std::size_t i = 0; i < kNodes; ++i) {
      // Node i ramps at its own rate, with a mid-run cooldown.
      const double temp =
          40.0 + 0.08 * static_cast<double>(i + 1) * (step < 120 ? step : 240 - step);
      bank_rigs[i]->truth = temp;
      bank_rigs[i]->sensor.sample();
      solo_rigs[i]->truth = temp;
      solo_rigs[i]->sensor.sample();
    }
    bank.tick_fans(now);
    for (std::size_t i = 0; i < kNodes; ++i) {
      solo[i]->on_sample(now);
      ASSERT_EQ(bank.fan(i).current_duty().percent(), solo[i]->current_duty().percent())
          << "node " << i << " step " << step;
    }
  }
}

TEST(ControlBank, BatchedTdvfsTicksMatchStandaloneDaemons) {
  constexpr std::size_t kNodes = 2;
  std::vector<std::unique_ptr<ControllerRig>> bank_rigs;
  std::vector<std::unique_ptr<ControllerRig>> solo_rigs;
  for (std::size_t i = 0; i < kNodes; ++i) {
    bank_rigs.push_back(std::make_unique<ControllerRig>());
    solo_rigs.push_back(std::make_unique<ControllerRig>());
  }
  TdvfsConfig cfg;
  cfg.threshold = Celsius{50.0};
  ControlBank bank{kNodes, nullptr};
  std::vector<std::unique_ptr<TdvfsDaemon>> solo;
  for (std::size_t i = 0; i < kNodes; ++i) {
    bank.emplace_tdvfs(i, *bank_rigs[i]->hwmon, *bank_rigs[i]->cpufreq, cfg);
    solo.push_back(
        std::make_unique<TdvfsDaemon>(*solo_rigs[i]->hwmon, *solo_rigs[i]->cpufreq, cfg));
  }
  SimTime now;
  for (int step = 0; step < 160; ++step) {
    now.advance_us(250000);
    for (std::size_t i = 0; i < kNodes; ++i) {
      const double temp = 44.0 + 0.15 * (i == 0 ? step : 160 - step);
      bank_rigs[i]->truth = temp;
      bank_rigs[i]->sensor.sample();
      solo_rigs[i]->truth = temp;
      solo_rigs[i]->sensor.sample();
    }
    bank.tick_tdvfs(now);
    for (std::size_t i = 0; i < kNodes; ++i) {
      solo[i]->on_sample(now);
      ASSERT_EQ(bank_rigs[i]->cpu.frequency().value(), solo_rigs[i]->cpu.frequency().value())
          << "node " << i << " step " << step;
    }
  }
}

TEST(ControlBank, HeterogeneousWindowConfigKeepsInlineStorage) {
  // The SoA window pool is sized from the family's first window; a node with
  // a different geometry must keep its inline storage (pooled = false) and
  // still control correctly.
  ControllerRig a;
  ControllerRig b;
  ControllerRig c;
  FanControlConfig standard;
  FanControlConfig wide = standard;
  wide.window.level1_size = 8;

  ControlBank bank{3, nullptr};
  bank.emplace_fan(0, *a.hwmon, standard);
  bank.emplace_fan(1, *b.hwmon, wide);  // odd one out
  bank.emplace_fan(2, *c.hwmon, standard);
  EXPECT_TRUE(bank.fan_window_pooled(0));
  EXPECT_FALSE(bank.fan_window_pooled(1));
  EXPECT_TRUE(bank.fan_window_pooled(2));

  // The odd window still rounds at its own cadence: 8 samples per round.
  SimTime now;
  for (int step = 0; step < 8; ++step) {
    now.advance_us(250000);
    for (ControllerRig* rig : {&a, &b, &c}) {
      rig->truth = 55.0;
      rig->sensor.sample();
    }
    bank.tick_fans(now);
  }
  EXPECT_EQ(bank.fan(1).window().level1_fill(), 0u);  // exactly one round closed
  EXPECT_EQ(bank.fan(0).window().level1_fill(), 0u);  // two rounds of 4
}

TEST(ControlBank, StaggerWindowsSpreadsRoundClosesAcrossTicks) {
  // Synchronized fleets close every window on the same tick; the phase wheel
  // must spread closes so each tick closes ~nodes/level1_size of them.
  constexpr std::size_t kNodes = 8;
  std::vector<std::unique_ptr<ControllerRig>> rigs;
  ControlBank bank{kNodes, nullptr};
  FanControlConfig cfg;  // level1_size = 4
  for (std::size_t i = 0; i < kNodes; ++i) {
    rigs.push_back(std::make_unique<ControllerRig>());
    bank.emplace_fan(i, *rigs[i]->hwmon, cfg);
  }
  bank.stagger_windows();

  SimTime now;
  for (int tick = 0; tick < 8; ++tick) {
    now.advance_us(250000);
    for (auto& rig : rigs) {
      rig->truth = 45.0;
      rig->sensor.sample();
    }
    std::vector<std::size_t> fill_before(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      fill_before[i] = bank.fan(i).window().level1_fill();
    }
    bank.tick_fans(now);
    std::size_t closes = 0;
    for (std::size_t i = 0; i < kNodes; ++i) {
      closes += bank.fan(i).window().level1_fill() < fill_before[i] + 1 ? 1 : 0;
    }
    // 8 nodes over a 4-phase wheel: exactly 2 windows close per tick, every
    // tick, instead of 8 closing together every 4th tick.
    EXPECT_EQ(closes, 2u) << "tick " << tick;
  }
}

TEST(ControlBankDeath, SparseEmplacementAborts) {
  ControllerRig rig;
  ControlBank bank{4, nullptr};
  FanControlConfig cfg;
  EXPECT_DEATH(bank.emplace_fan(2, *rig.hwmon, cfg), "dense");
}

}  // namespace
}  // namespace thermctl::core
