#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/alerts.hpp"
#include "obs/rollup.hpp"
#include "obs/spill.hpp"
#include "obs/trace.hpp"

namespace thermctl::core {
namespace {

ExperimentResult sample_result() {
  ExperimentResult r;
  r.run.exec_time_s = 219.0;
  r.run.app_completed = true;
  r.run.summaries.resize(2);
  r.run.nodes.resize(2);
  r.run.summaries[0].avg_die_temp = 49.5;
  r.run.summaries[0].max_die_temp = 52.0;
  r.run.summaries[0].avg_duty = 55.0;
  r.run.summaries[0].avg_power_w = 99.8;
  r.run.summaries[0].freq_transitions = 2;
  r.run.summaries[1].avg_die_temp = 50.1;
  r.run.summaries[1].max_die_temp = 53.5;
  r.run.summaries[1].avg_power_w = 98.2;
  r.run.summaries[1].prochot_events = 1;
  r.tdvfs_events.resize(2);
  r.fan_events.resize(2);
  r.tdvfs_events[0].push_back(TdvfsEvent{70.0, 2.4, 2.2});
  r.fan_events[1].push_back(FanEvent{12.0, 10.0, 35.0, false});
  r.fan_events[1].push_back(FanEvent{80.0, 35.0, 50.0, true});
  return r;
}

TEST(Report, VerdictCarriesHeadlineNumbers) {
  const std::string v = render_verdict(sample_result());
  EXPECT_NE(v.find("completed"), std::string::npos);
  EXPECT_NE(v.find("219"), std::string::npos);
  EXPECT_NE(v.find("53.5"), std::string::npos);  // hottest die
  EXPECT_NE(v.find("2 frequency transitions"), std::string::npos);
}

TEST(Report, IncompleteRunSaysSo) {
  ExperimentResult r = sample_result();
  r.run.app_completed = false;
  EXPECT_NE(render_verdict(r).find("horizon reached"), std::string::npos);
}

TEST(Report, PerNodeTableListsEveryNode) {
  const std::string report = render_report(sample_result());
  EXPECT_NE(report.find("node0"), std::string::npos);
  EXPECT_NE(report.find("node1"), std::string::npos);
  EXPECT_NE(report.find("49.5"), std::string::npos);
}

TEST(Report, TimelineMergedAndSorted) {
  const std::string report = render_report(sample_result());
  const auto fan_first = report.find("fan 10% -> 35% duty");
  const auto dvfs = report.find("tDVFS 2.4 -> 2.2 GHz");
  const auto fan_second = report.find("fan 35% -> 50% duty (gradual)");
  ASSERT_NE(fan_first, std::string::npos);
  ASSERT_NE(dvfs, std::string::npos);
  ASSERT_NE(fan_second, std::string::npos);
  EXPECT_LT(fan_first, dvfs);
  EXPECT_LT(dvfs, fan_second);
}

TEST(Report, EventCapAnnounced) {
  ExperimentResult r = sample_result();
  for (int i = 0; i < 40; ++i) {
    r.fan_events[0].push_back(FanEvent{100.0 + i, 10.0, 11.0, false});
  }
  ReportOptions opts;
  opts.max_events = 5;
  const std::string report = render_report(r, opts);
  EXPECT_NE(report.find("first 5 of"), std::string::npos);
}

TEST(Report, SectionsSuppressible) {
  ReportOptions opts;
  opts.per_node = false;
  opts.events = false;
  const std::string report = render_report(sample_result(), opts);
  EXPECT_EQ(report.find("node0"), std::string::npos);
  EXPECT_EQ(report.find("timeline"), std::string::npos);
  EXPECT_NE(report.find("completed"), std::string::npos);
}

TEST(Report, EmptyEventsNoTimelineHeader) {
  ExperimentResult r = sample_result();
  r.tdvfs_events.assign(2, {});
  r.fan_events.assign(2, {});
  EXPECT_EQ(render_report(r).find("timeline"), std::string::npos);
}

// The live-pipeline sections of the run-summary JSON are a machine-readable
// contract: fixed keys, fixed nesting. This round-trips a fully populated
// result through write_run_summary_json and checks the schema keys and a few
// exact values — effectively a golden-file test that tolerates float noise.
TEST(RunSummaryJson, RoundTripsLivePipelineSections) {
  ExperimentResult r = sample_result();

  r.trace = std::make_shared<obs::RunTrace>(2, 2);
  for (int i = 0; i < 4; ++i) {
    r.trace->ring(1).emit(obs::TraceEvent{.t_s = 1.0 + i});
  }

  obs::SpillStats spill;
  spill.drains = 7;
  spill.events_spilled = 4;
  spill.events_lost = 2;
  spill.deferred_drains = 1;
  spill.lost_by_node = {0, 2};
  r.spill = spill;

  obs::RollupConfig rcfg;
  rcfg.enabled = true;
  rcfg.interval_s = 0.5;
  rcfg.nodes_per_rack = 1;
  rcfg.violation_temp_c = 55.0;
  r.rollup = std::make_shared<obs::FleetRollup>(2, rcfg);
  r.rollup->begin(0.5);
  r.rollup->observe(0, 60.0, 100.0, true, false);
  r.rollup->observe(1, 50.0, 90.0, false, false);
  r.rollup->commit(1, 3);

  r.alert_rules = {{"hot-rack", obs::AlertKind::kMaxTemp, 55.0, 0.0, true}};
  obs::AlertEvent ev;
  ev.rule = 0;
  ev.name = "hot-rack";
  ev.rack = 0;
  ev.fired_at_s = 0.5;
  ev.cleared_at_s = -1.0;
  ev.peak = 60.0;
  r.alerts = {ev};

  const std::string path = ::testing::TempDir() + "thermctl_summary_roundtrip.json";
  write_run_summary_json(path, "roundtrip", r);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());

  // trace section with per-node drop accounting (ring capacity 2, 4 emits).
  EXPECT_NE(json.find("\"dropped_by_node\":[0,2]"), std::string::npos);

  // spill section mirrors SpillStats exactly.
  EXPECT_NE(json.find("\"spill\":{"), std::string::npos);
  EXPECT_NE(json.find("\"drains\":7"), std::string::npos);
  EXPECT_NE(json.find("\"events_spilled\":4"), std::string::npos);
  EXPECT_NE(json.find("\"events_lost\":2"), std::string::npos);
  EXPECT_NE(json.find("\"deferred_drains\":1"), std::string::npos);
  EXPECT_NE(json.find("\"lost_by_node\":[0,2]"), std::string::npos);

  // rollup section: config echo, fleet series row, per-rack aggregate rows.
  EXPECT_NE(json.find("\"rollup\":{"), std::string::npos);
  EXPECT_NE(json.find("\"interval_s\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"racks\":2"), std::string::npos);
  EXPECT_NE(json.find("\"samples_recorded\":3"), std::string::npos);
  EXPECT_NE(json.find("\"max_temp_c\":60"), std::string::npos);
  EXPECT_NE(json.find("\"power_w\":190"), std::string::npos);
  EXPECT_NE(json.find("\"plane_failsafe_entries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sensor_rejected\":3"), std::string::npos);
  EXPECT_NE(json.find("\"racks_summary\":["), std::string::npos);
  EXPECT_NE(json.find("\"peak_power_w\":100"), std::string::npos);
  EXPECT_NE(json.find("\"last_capped_nodes\":1"), std::string::npos);

  // alerts section: declarative rules plus machine-readable episodes.
  EXPECT_NE(json.find("\"alerts\":{"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"max_temp\""), std::string::npos);
  EXPECT_NE(json.find("\"per_rack\":true"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hot-rack\""), std::string::npos);
  EXPECT_NE(json.find("\"fired_at_s\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"cleared_at_s\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"peak\":60"), std::string::npos);
}

TEST(Report, MentionsDropsSpillLossAndAlerts) {
  ExperimentResult r = sample_result();
  r.trace = std::make_shared<obs::RunTrace>(2, 2);
  for (int i = 0; i < 4; ++i) {
    r.trace->ring(1).emit(obs::TraceEvent{.t_s = 1.0 + i});
  }
  obs::SpillStats spill;
  spill.events_spilled = 8;
  spill.events_lost = 2;
  r.spill = spill;
  r.alert_rules = {{"hot-rack", obs::AlertKind::kMaxTemp, 55.0, 0.0, true}};
  obs::AlertEvent ev;
  ev.name = "hot-rack";
  ev.fired_at_s = 0.5;
  r.alerts = {ev};

  const std::string report = render_report(r);
  EXPECT_NE(report.find("2 events dropped"), std::string::npos);
  EXPECT_NE(report.find("spiller lost 2 of 10"), std::string::npos);
  EXPECT_NE(report.find("alerts: 1 episode(s), 1 still firing"), std::string::npos);
}

}  // namespace
}  // namespace thermctl::core
