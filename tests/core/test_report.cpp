#include "core/report.hpp"

#include <gtest/gtest.h>

namespace thermctl::core {
namespace {

ExperimentResult sample_result() {
  ExperimentResult r;
  r.run.exec_time_s = 219.0;
  r.run.app_completed = true;
  r.run.summaries.resize(2);
  r.run.nodes.resize(2);
  r.run.summaries[0].avg_die_temp = 49.5;
  r.run.summaries[0].max_die_temp = 52.0;
  r.run.summaries[0].avg_duty = 55.0;
  r.run.summaries[0].avg_power_w = 99.8;
  r.run.summaries[0].freq_transitions = 2;
  r.run.summaries[1].avg_die_temp = 50.1;
  r.run.summaries[1].max_die_temp = 53.5;
  r.run.summaries[1].avg_power_w = 98.2;
  r.run.summaries[1].prochot_events = 1;
  r.tdvfs_events.resize(2);
  r.fan_events.resize(2);
  r.tdvfs_events[0].push_back(TdvfsEvent{70.0, 2.4, 2.2});
  r.fan_events[1].push_back(FanEvent{12.0, 10.0, 35.0, false});
  r.fan_events[1].push_back(FanEvent{80.0, 35.0, 50.0, true});
  return r;
}

TEST(Report, VerdictCarriesHeadlineNumbers) {
  const std::string v = render_verdict(sample_result());
  EXPECT_NE(v.find("completed"), std::string::npos);
  EXPECT_NE(v.find("219"), std::string::npos);
  EXPECT_NE(v.find("53.5"), std::string::npos);  // hottest die
  EXPECT_NE(v.find("2 frequency transitions"), std::string::npos);
}

TEST(Report, IncompleteRunSaysSo) {
  ExperimentResult r = sample_result();
  r.run.app_completed = false;
  EXPECT_NE(render_verdict(r).find("horizon reached"), std::string::npos);
}

TEST(Report, PerNodeTableListsEveryNode) {
  const std::string report = render_report(sample_result());
  EXPECT_NE(report.find("node0"), std::string::npos);
  EXPECT_NE(report.find("node1"), std::string::npos);
  EXPECT_NE(report.find("49.5"), std::string::npos);
}

TEST(Report, TimelineMergedAndSorted) {
  const std::string report = render_report(sample_result());
  const auto fan_first = report.find("fan 10% -> 35% duty");
  const auto dvfs = report.find("tDVFS 2.4 -> 2.2 GHz");
  const auto fan_second = report.find("fan 35% -> 50% duty (gradual)");
  ASSERT_NE(fan_first, std::string::npos);
  ASSERT_NE(dvfs, std::string::npos);
  ASSERT_NE(fan_second, std::string::npos);
  EXPECT_LT(fan_first, dvfs);
  EXPECT_LT(dvfs, fan_second);
}

TEST(Report, EventCapAnnounced) {
  ExperimentResult r = sample_result();
  for (int i = 0; i < 40; ++i) {
    r.fan_events[0].push_back(FanEvent{100.0 + i, 10.0, 11.0, false});
  }
  ReportOptions opts;
  opts.max_events = 5;
  const std::string report = render_report(r, opts);
  EXPECT_NE(report.find("first 5 of"), std::string::npos);
}

TEST(Report, SectionsSuppressible) {
  ReportOptions opts;
  opts.per_node = false;
  opts.events = false;
  const std::string report = render_report(sample_result(), opts);
  EXPECT_EQ(report.find("node0"), std::string::npos);
  EXPECT_EQ(report.find("timeline"), std::string::npos);
  EXPECT_NE(report.find("completed"), std::string::npos);
}

TEST(Report, EmptyEventsNoTimelineHeader) {
  ExperimentResult r = sample_result();
  r.tdvfs_events.assign(2, {});
  r.fan_events.assign(2, {});
  EXPECT_EQ(render_report(r).find("timeline"), std::string::npos);
}

}  // namespace
}  // namespace thermctl::core
