#include "core/control_array.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "verify/invariants.hpp"

namespace thermctl::core {
namespace {

std::vector<double> duty_1_to(int max) {
  std::vector<double> modes;
  for (int d = 1; d <= max; ++d) {
    modes.push_back(static_cast<double>(d));
  }
  return modes;
}

TEST(Eq1, BoundaryValues) {
  // Pp = Pmin gives n_p = 1; Pp = Pmax gives n_p = N.
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{1}, 100), 1u);
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{100}, 100), 100u);
}

TEST(Eq1, PaperExampleValues) {
  // N = 100, [Pmin, Pmax] = [1, 100]: n_p = floor((Pp-1)*99/99) + 1 = Pp.
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{25}, 100), 25u);
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{50}, 100), 50u);
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{75}, 100), 75u);
}

TEST(Eq1, SmallerArray) {
  // N = 16: n_p = floor((Pp-1)*15/99) + 1.
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{50}, 16), 8u);
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{25}, 16), 4u);
  EXPECT_EQ(ThermalControlArray::eq1_np(PolicyParam{75}, 16), 12u);
}

TEST(Eq1, MonotoneInPp) {
  std::size_t prev = 0;
  for (int pp = 1; pp <= 100; ++pp) {
    const std::size_t np = ThermalControlArray::eq1_np(PolicyParam{pp}, 100);
    EXPECT_GE(np, prev);
    prev = np;
  }
}

TEST(ControlArray, BoundaryCellsAlwaysExtremes) {
  ThermalControlArray arr{duty_1_to(100), 100, PolicyParam{50}};
  EXPECT_DOUBLE_EQ(arr.least_effective(), 1.0);
  EXPECT_DOUBLE_EQ(arr.most_effective(), 100.0);
  EXPECT_DOUBLE_EQ(arr.mode(0), 1.0);
  EXPECT_DOUBLE_EQ(arr.mode(99), 100.0);
}

TEST(ControlArray, CellsFromNpOnwardAreMostEffective) {
  ThermalControlArray arr{duty_1_to(100), 100, PolicyParam{25}};
  EXPECT_EQ(arr.np(), 25u);
  for (std::size_t i = arr.np(); i <= arr.size(); ++i) {
    EXPECT_DOUBLE_EQ(arr.mode(i - 1), 100.0) << "cell " << i;
  }
}

TEST(ControlArray, SmallPpIsMoreAggressiveAtSameIndex) {
  ThermalControlArray aggressive{duty_1_to(100), 100, PolicyParam{25}};
  ThermalControlArray weak{duty_1_to(100), 100, PolicyParam{75}};
  // At every index the aggressive fill commands at least as strong a mode.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(aggressive.mode(i), weak.mode(i)) << "index " << i;
  }
  // And strictly stronger somewhere in the middle.
  EXPECT_GT(aggressive.mode(40), weak.mode(40));
}

TEST(ControlArray, RampIsEvenlyExtractedSubset) {
  // Pp = 50, N = 100, M = 75 physical modes (max duty 75%): the 49 ramp
  // cells must sample the 75 modes evenly, starting at the least effective.
  ThermalControlArray arr{duty_1_to(75), 100, PolicyParam{50}};
  EXPECT_DOUBLE_EQ(arr.mode(0), 1.0);
  // Ramp cell i (1-based) holds modes[(i-1)*75/49].
  EXPECT_DOUBLE_EQ(arr.mode(24), duty_1_to(75)[24 * 75 / 49]);
  // Last ramp cell is near but below the top.
  EXPECT_LT(arr.mode(arr.np() - 2), 75.0);
  EXPECT_GT(arr.mode(arr.np() - 2), 60.0);
}

TEST(ControlArray, DuplicatesWhenNExceedsPhysicalModes) {
  // 5 frequencies into a 16-cell array: duplicates are expected and legal
  // (§3.2.2 explicitly allows them).
  const std::vector<double> freqs{2.4, 2.2, 2.0, 1.8, 1.0};
  ThermalControlArray arr{freqs, 16, PolicyParam{75}};
  int count_24 = 0;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (arr.mode(i) == 2.4) {
      ++count_24;
    }
  }
  EXPECT_GT(count_24, 1);
}

TEST(ControlArray, DvfsOrderingDescendingFrequency) {
  const std::vector<double> freqs{2.4, 2.2, 2.0, 1.8, 1.0};
  ThermalControlArray arr{freqs, 16, PolicyParam{50}};
  EXPECT_DOUBLE_EQ(arr.least_effective(), 2.4);
  EXPECT_DOUBLE_EQ(arr.most_effective(), 1.0);
  // Non-ascending in frequency = non-descending in effectiveness.
  for (std::size_t i = 1; i < arr.size(); ++i) {
    EXPECT_LE(arr.mode(i), arr.mode(i - 1) + 1e-12);
  }
}

TEST(ControlArray, SetPolicyRefills) {
  ThermalControlArray arr{duty_1_to(100), 100, PolicyParam{75}};
  const double before = arr.mode(40);
  arr.set_policy(PolicyParam{25});
  EXPECT_EQ(arr.np(), 25u);
  EXPECT_GT(arr.mode(40), before);
}

TEST(ControlArray, SetPolicyMatchesFreshConstruction) {
  // A runtime re-tune must land on exactly the fill a fresh array built
  // with the new Pp would have — no history leaks through set_policy.
  for (int from : {1, 25, 75, 100}) {
    for (int to : {1, 33, 66, 100}) {
      ThermalControlArray retuned{duty_1_to(75), 100, PolicyParam{from}};
      retuned.set_policy(PolicyParam{to});
      const ThermalControlArray fresh{duty_1_to(75), 100, PolicyParam{to}};
      ASSERT_EQ(retuned.np(), fresh.np()) << from << "->" << to;
      for (std::size_t i = 0; i < retuned.size(); ++i) {
        ASSERT_DOUBLE_EQ(retuned.mode(i), fresh.mode(i))
            << from << "->" << to << " cell " << i;
      }
    }
  }
}

TEST(ControlArray, SetPolicyKeepsNonDescendingInvariant) {
  // Walk the whole Pp range over a duplicate-heavy geometry (N > physical
  // modes) and check the effectiveness ordering survives every refill.
  const std::vector<double> freqs{2.4, 2.2, 2.0, 1.8, 1.0};
  ThermalControlArray arr{freqs, 16, PolicyParam{50}};
  for (int pp = 1; pp <= 100; ++pp) {
    arr.set_policy(PolicyParam{pp});
    EXPECT_EQ(arr.policy().value, pp);
    for (std::size_t i = 1; i < arr.size(); ++i) {
      ASSERT_LE(arr.mode(i), arr.mode(i - 1) + 1e-12) << "Pp=" << pp << " i=" << i;
    }
    EXPECT_DOUBLE_EQ(arr.least_effective(), 2.4);
    EXPECT_DOUBLE_EQ(arr.most_effective(), 1.0);
  }
}

TEST(ControlArray, SetPolicyBoundaryFlip) {
  // Pp 1 ↔ 100 are Eq. (1)'s extremes: n_p snaps between 1 and N, and the
  // interior cells flip between all-strongest and the gentle ramp.
  ThermalControlArray arr{duty_1_to(100), 100, PolicyParam{1}};
  EXPECT_EQ(arr.np(), 1u);
  EXPECT_DOUBLE_EQ(arr.mode(50), 100.0);  // everything past cell 1 is max
  arr.set_policy(PolicyParam{100});
  EXPECT_EQ(arr.np(), 100u);
  EXPECT_DOUBLE_EQ(arr.mode(50), 51.0);  // identity-ish ramp
  arr.set_policy(PolicyParam{1});
  EXPECT_EQ(arr.np(), 1u);
  EXPECT_DOUBLE_EQ(arr.mode(50), 100.0);
}

TEST(ControlArray, IndexOfNearest) {
  ThermalControlArray arr{duty_1_to(100), 100, PolicyParam{100}};  // identity-ish ramp
  EXPECT_EQ(arr.index_of_nearest(1.0), 0u);
  const std::size_t idx = arr.index_of_nearest(50.4);
  EXPECT_NEAR(arr.mode(idx), 50.0, 1.0);
}

TEST(ControlArrayDeath, RejectsEmptyModes) {
  EXPECT_DEATH(ThermalControlArray({}, 10, PolicyParam{50}), "mode");
}

TEST(ControlArrayDeath, RejectsTinyArray) {
  EXPECT_DEATH(ThermalControlArray({1.0}, 1, PolicyParam{50}), "two cells");
}

TEST(PolicyParamDeath, RejectsOutOfRange) {
  EXPECT_DEATH(PolicyParam{0}, "Pp");
  EXPECT_DEATH(PolicyParam{101}, "Pp");
}

// ---- Property sweep over the full policy range and several geometries ----

struct FillCase {
  int pp;
  std::size_t n;
  int physical_modes;
};

class ControlArrayFillSweep : public ::testing::TestWithParam<FillCase> {};

TEST_P(ControlArrayFillSweep, InvariantsHoldForAllFills) {
  const FillCase c = GetParam();
  ThermalControlArray arr{duty_1_to(c.physical_modes), c.n, PolicyParam{c.pp}};

  // 1. n_p in [1, N].
  EXPECT_GE(arr.np(), 1u);
  EXPECT_LE(arr.np(), c.n);

  // 2. Non-descending effectiveness (ascending duty).
  for (std::size_t i = 1; i < arr.size(); ++i) {
    EXPECT_LE(arr.mode(i - 1), arr.mode(i)) << "Pp=" << c.pp << " i=" << i;
  }

  // 3. First cell least effective, last cell most effective.
  EXPECT_DOUBLE_EQ(arr.mode(0), 1.0);
  EXPECT_DOUBLE_EQ(arr.mode(arr.size() - 1), static_cast<double>(c.physical_modes));

  // 4. Every cell holds a physically available mode.
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const double m = arr.mode(i);
    EXPECT_GE(m, 1.0);
    EXPECT_LE(m, static_cast<double>(c.physical_modes));
    EXPECT_DOUBLE_EQ(m, std::round(m));  // integer duty modes stay integer
  }

  // 5. Cells [n_p, N] all hold the most effective mode — except cell 1,
  // which §3.2.2 pins to the least effective mode even when n_p == 1.
  for (std::size_t i = std::max<std::size_t>(arr.np(), 2); i <= arr.size(); ++i) {
    EXPECT_DOUBLE_EQ(arr.mode(i - 1), static_cast<double>(c.physical_modes));
  }
}

std::vector<FillCase> fill_cases() {
  std::vector<FillCase> cases;
  for (int pp : {1, 2, 10, 25, 33, 50, 66, 75, 90, 99, 100}) {
    for (const auto& [n, m] : std::vector<std::pair<std::size_t, int>>{
             {100, 100}, {100, 75}, {100, 25}, {16, 5}, {50, 5}, {8, 100}, {2, 2}}) {
      cases.push_back(FillCase{pp, n, m});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(PolicyGeometryGrid, ControlArrayFillSweep,
                         ::testing::ValuesIn(fill_cases()));

// ---- Exhaustive sweep: every Pp against awkward geometries ----
//
// The parameterized grid above samples Pp; this covers the complete policy
// range against array bounds and physical-mode counts chosen to hit the
// nasty divisions in the ramp extraction (primes, N < M, N > M, M == 1),
// checked by the verification layer's structural invariants — the same
// code the runtime invariant checker arms on live experiments.
TEST(ControlArrayExhaustive, EveryPpAcrossGeometriesAndRetunes) {
  for (const std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{61},
                              std::size_t{100}}) {
    for (const int m : {1, 2, 7, 61}) {
      for (int pp = 1; pp <= 100; ++pp) {
        ThermalControlArray arr{duty_1_to(m), n, PolicyParam{pp}};
        verify::InvariantReport report;
        verify::check_control_array(arr, report);
        ASSERT_TRUE(report.ok())
            << "N=" << n << " M=" << m << " Pp=" << pp << "\n" << report.to_string();
        // Runtime re-tune to the mirrored policy: the refill must satisfy
        // the same invariants (and Eq. (1) for the *new* Pp).
        arr.set_policy(PolicyParam{101 - pp});
        verify::check_control_array(arr, report);
        ASSERT_TRUE(report.ok()) << "N=" << n << " M=" << m << " Pp=" << pp
                                 << " retuned to " << 101 - pp << "\n" << report.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace thermctl::core
