// AlignedVector backs the batched solvers' SoA arrays; the vectorized sweeps
// assume every buffer starts on a cache-line boundary.
#include "common/aligned.hpp"

#include <cstdint>
#include <numeric>

#include <gtest/gtest.h>

namespace thermctl {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(AlignedVector, BufferStartsOnCacheLineForAnySize) {
  for (std::size_t n : {1u, 2u, 7u, 63u, 64u, 65u, 1000u, 4096u}) {
    AlignedVector<double> v(n, 1.5);
    EXPECT_TRUE(aligned64(v.data())) << "size " << n;
  }
}

TEST(AlignedVector, GrowthPreservesAlignmentAndContents) {
  AlignedVector<double> v;
  for (int i = 0; i < 300; ++i) {
    v.push_back(static_cast<double>(i));
    ASSERT_TRUE(aligned64(v.data())) << "after push " << i;
  }
  EXPECT_DOUBLE_EQ(std::accumulate(v.begin(), v.end(), 0.0), 299.0 * 300.0 / 2.0);
}

TEST(AlignedAllocator, StatelessAllocatorsCompareEqual) {
  // vector move/swap relies on allocator equality; a stateless aligned
  // allocator must always compare equal (storage is interchangeable).
  AlignedAllocator<double> a;
  AlignedAllocator<double> b;
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a != b);
  double* p = a.allocate(17);
  EXPECT_TRUE(aligned64(p));
  b.deallocate(p, 17);  // cross-instance deallocate is legal
}

TEST(AlignedAllocator, RebindKeepsAlignment) {
  using Rebound = AlignedAllocator<double>::rebind<std::size_t>::other;
  Rebound r;
  std::size_t* p = r.allocate(5);
  EXPECT_TRUE(aligned64(p));
  r.deallocate(p, 5);
}

}  // namespace
}  // namespace thermctl
