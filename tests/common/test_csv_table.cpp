#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace thermctl {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/thermctl_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv{path_, {"t", "temp", "duty"}};
    csv.row({0.0, 42.5, 10.0});
    csv.row({0.25, 42.75, 11.0});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "t,temp,duty\n0,42.5,10\n0.25,42.75,11\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter csv{path_, {"a", "b"}};
  EXPECT_DEATH(csv.row({1.0}), "width");
}

TEST_F(CsvTest, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST_F(CsvTest, EmptySeriesLeavesHeaderOnly) {
  {
    CsvWriter csv{path_, {"t", "temp"}};
    EXPECT_EQ(csv.rows_written(), 0u);
  }
  EXPECT_EQ(read_file(path_), "t,temp\n");
}

TEST_F(CsvTest, QuotesHeaderFieldsThatNeedIt) {
  {
    CsvWriter csv{path_, {"time (s)", "power (W), total", "say \"what\"", "multi\nline"}};
    csv.row({1.0, 2.0, 3.0, 4.0});
  }
  EXPECT_EQ(read_file(path_),
            "time (s),\"power (W), total\",\"say \"\"what\"\"\",\"multi\nline\"\n"
            "1,2,3,4\n");
}

TEST_F(CsvTest, ReopeningAPathTruncatesThePreviousSeries) {
  {
    CsvWriter csv{path_, {"a", "b"}};
    csv.row({1.0, 2.0});
    csv.row({3.0, 4.0});
  }
  {
    CsvWriter csv{path_, {"x"}};
    csv.row({9.0});
    EXPECT_EQ(csv.rows_written(), 1u);  // counts restart with the new file
  }
  EXPECT_EQ(read_file(path_), "x\n9\n");
}

TEST_F(CsvTest, RejectsEmptyColumnSet) {
  EXPECT_DEATH(CsvWriter(path_, {}), "column");
}

TEST(CsvEscape, PassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape("duty"), "duty");
  EXPECT_EQ(csv_escape("time (s)"), "time (s)");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesAndDoublesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("he said \"hi\""), "\"he said \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\r\nbreak"), "\"line\r\nbreak\"");
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(42.5), "42.5");
  EXPECT_EQ(format_number(0.125), "0.125");
}

TEST(FormatNumber, HandlesNonFinite) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(FormatNumber, RespectsMaxDecimals) {
  EXPECT_EQ(format_number(1.0 / 3.0, 3), "0.333");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t{{"policy", "temp", "power"}};
  t.add_row({"Pp=25", "47.1", "101.2"});
  t.add_row({"Pp=75", "52.9", "97.4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("Pp=25"), std::string::npos);
  // Numeric cells right-aligned under their headers: every line same length.
  std::istringstream lines{out};
  std::string line;
  std::getline(lines, line);
  const std::size_t width = line.size();
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, NumericRowHelper) {
  TextTable t{{"label", "a", "b"}};
  t.add_row("row", {1.234, 5.678}, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.7"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchAborts) {
  TextTable t{{"a", "b"}};
  EXPECT_DEATH(t.add_row({"only-one"}), "width");
}

}  // namespace
}  // namespace thermctl
