#include "common/units.hpp"

#include <gtest/gtest.h>

namespace thermctl {
namespace {

using namespace thermctl::literals;

TEST(Units, CelsiusDifferenceYieldsDelta) {
  const CelsiusDelta d = 50.0_degC - 42.0_degC;
  EXPECT_DOUBLE_EQ(d.value(), 8.0);
}

TEST(Units, CelsiusPlusDelta) {
  const Celsius t = 40.0_degC + 2.5_dK;
  EXPECT_DOUBLE_EQ(t.value(), 42.5);
}

TEST(Units, CelsiusMinusDelta) {
  const Celsius t = 40.0_degC - 2.5_dK;
  EXPECT_DOUBLE_EQ(t.value(), 37.5);
}

TEST(Units, CelsiusCompoundAdd) {
  Celsius t{40.0};
  t += CelsiusDelta{1.5};
  EXPECT_DOUBLE_EQ(t.value(), 41.5);
}

TEST(Units, CelsiusOrdering) {
  EXPECT_LT(40.0_degC, 41.0_degC);
  EXPECT_GT(82.0_degC, 38.0_degC);
  EXPECT_EQ(38.0_degC, 38.0_degC);
}

TEST(Units, DeltaArithmetic) {
  const CelsiusDelta a{3.0};
  const CelsiusDelta b{1.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 4.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 2.0);
  EXPECT_DOUBLE_EQ((-a).value(), -3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 1.5);
}

TEST(Units, LikeQuantityRatioIsDimensionless) {
  EXPECT_DOUBLE_EQ(Watts{100.0} / Watts{50.0}, 2.0);
  EXPECT_DOUBLE_EQ(Seconds{10.0} / Seconds{4.0}, 2.5);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = 50.0_W * 10.0_s;
  EXPECT_DOUBLE_EQ(e.value(), 500.0);
  const Joules e2 = 10.0_s * 50.0_W;
  EXPECT_DOUBLE_EQ(e2.value(), 500.0);
}

TEST(Units, DutyCycleClampsLow) {
  EXPECT_DOUBLE_EQ(DutyCycle{-5.0}.percent(), 0.0);
}

TEST(Units, DutyCycleClampsHigh) {
  EXPECT_DOUBLE_EQ(DutyCycle{150.0}.percent(), 100.0);
}

TEST(Units, DutyCycleFraction) {
  EXPECT_DOUBLE_EQ(DutyCycle{25.0}.fraction(), 0.25);
  EXPECT_DOUBLE_EQ(DutyCycle{100.0}.fraction(), 1.0);
}

TEST(Units, DutyCycleOrdering) {
  EXPECT_LT(DutyCycle{10.0}, DutyCycle{75.0});
}

TEST(Units, UtilizationClamps) {
  EXPECT_DOUBLE_EQ(Utilization{-0.1}.fraction(), 0.0);
  EXPECT_DOUBLE_EQ(Utilization{1.7}.fraction(), 1.0);
  EXPECT_DOUBLE_EQ(Utilization{0.5}.percent(), 50.0);
}

TEST(Units, FrequencyLiterals) {
  EXPECT_DOUBLE_EQ((2.4_GHz).value(), 2.4);
  EXPECT_DOUBLE_EQ((1_GHz).value(), 1.0);
}

TEST(Units, QuantityCompoundOps) {
  Watts p{10.0};
  p += Watts{5.0};
  EXPECT_DOUBLE_EQ(p.value(), 15.0);
  p -= Watts{3.0};
  EXPECT_DOUBLE_EQ(p.value(), 12.0);
}

TEST(Units, ScalarOnLeft) {
  EXPECT_DOUBLE_EQ((2.0 * Watts{21.0}).value(), 42.0);
}

TEST(Units, PwmLiteral) {
  EXPECT_DOUBLE_EQ((75_pwm).percent(), 75.0);
  EXPECT_DOUBLE_EQ((10.5_pwm).percent(), 10.5);
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Celsius{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(DutyCycle{}.percent(), 0.0);
}

}  // namespace
}  // namespace thermctl
