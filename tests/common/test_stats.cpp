#include "common/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace thermctl {
namespace {

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  OnlineStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(Summarize, BasicPercentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(static_cast<double>(i));
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(PercentileSorted, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 7.0);
}

TEST(PercentileSorted, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.25), 2.5);
}

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(moving_average(xs, 1), xs);
}

TEST(MovingAverage, SmoothsRamp) {
  const std::vector<double> xs{0.0, 2.0, 4.0, 6.0};
  const auto out = moving_average(xs, 2);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[3], 5.0);
}

TEST(Slope, LinearSeriesExact) {
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    ys.push_back(3.0 + 0.5 * i);
  }
  EXPECT_NEAR(slope(ys), 0.5, 1e-12);
}

TEST(Slope, RespectsDx) {
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    ys.push_back(3.0 + 0.5 * i);  // 0.5 per sample
  }
  // At 4 Hz (dx = 0.25 s) that is 2.0 per second.
  EXPECT_NEAR(slope(ys, 0.25), 2.0, 1e-12);
}

TEST(Slope, ConstantSeriesIsZero) {
  const std::vector<double> ys{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(slope(ys), 0.0);
}

TEST(Slope, TooFewSamplesIsZero) {
  EXPECT_DOUBLE_EQ(slope(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(slope(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace thermctl
