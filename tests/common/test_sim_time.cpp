#include "common/sim_time.hpp"

#include <gtest/gtest.h>

namespace thermctl {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::from_ms(250).us(), 250000);
  EXPECT_DOUBLE_EQ(SimTime::from_seconds(1.5).seconds(), 1.5);
  EXPECT_EQ(SimTime::from_us(42).us(), 42);
}

TEST(SimTime, Difference) {
  const SimTime a = SimTime::from_ms(1000);
  const SimTime b = SimTime::from_ms(250);
  EXPECT_DOUBLE_EQ((a - b).value(), 0.75);
}

TEST(SimTime, AddSeconds) {
  const SimTime t = SimTime::from_ms(100) + Seconds{0.4};
  EXPECT_EQ(t.us(), 500000);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::from_ms(1), SimTime::from_ms(2));
  EXPECT_EQ(SimTime::from_ms(5), SimTime::from_us(5000));
}

TEST(SimTime, AdvanceExactIntegerTicks) {
  SimTime t;
  for (int i = 0; i < 1000; ++i) {
    t.advance_us(250000);  // 4 Hz sampling for 250 s
  }
  EXPECT_EQ(t.us(), 250000000);
  EXPECT_DOUBLE_EQ(t.seconds(), 250.0);
}

TEST(PeriodicSchedule, FiresAtPeriodBoundaries) {
  PeriodicSchedule s{250000};  // 250 ms
  EXPECT_TRUE(s.due(SimTime::from_ms(0)));   // fires at phase 0
  EXPECT_FALSE(s.due(SimTime::from_ms(100)));
  EXPECT_TRUE(s.due(SimTime::from_ms(250)));
  EXPECT_FALSE(s.due(SimTime::from_ms(251)));
  EXPECT_TRUE(s.due(SimTime::from_ms(500)));
}

TEST(PeriodicSchedule, CatchesUpWhenPolledLate) {
  PeriodicSchedule s{100000};  // 100 ms
  int fired = 0;
  while (s.due(SimTime::from_ms(1000))) {
    ++fired;
  }
  EXPECT_EQ(fired, 11);  // t=0 through t=1000 inclusive
}

TEST(PeriodicSchedule, PhaseDelaysFirstFiring) {
  PeriodicSchedule s{100000, 100000};
  EXPECT_FALSE(s.due(SimTime::from_ms(0)));
  EXPECT_FALSE(s.due(SimTime::from_ms(99)));
  EXPECT_TRUE(s.due(SimTime::from_ms(100)));
}

TEST(PeriodicSchedule, ZeroPeriodNeverFires) {
  PeriodicSchedule s{0};
  EXPECT_FALSE(s.due(SimTime::from_ms(1000)));
}

TEST(PeriodicSchedule, FourHzProducesFourPerSecond) {
  PeriodicSchedule s{250000};
  int fired = 0;
  for (std::int64_t ms = 0; ms <= 10000; ms += 50) {
    while (s.due(SimTime::from_ms(ms))) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 41);  // t=0 plus 4/s for 10 s
}

}  // namespace
}  // namespace thermctl
