#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace thermctl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearCenter) {
  Rng rng{99};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng{42};
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng{42};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{11};
  Rng child = parent.fork();
  // The child stream must not replay the parent stream.
  Rng parent_replay{11};
  parent_replay.next_u64();  // consume what fork consumed
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent_replay.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace thermctl
