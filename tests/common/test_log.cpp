#include "common/log.hpp"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace thermctl {
namespace {

struct CapturedLine {
  LogLevel level;
  std::string component;
  std::string msg;
};

class LogCapture {
 public:
  LogCapture() {
    Logger::instance().set_sink([this](LogLevel level, std::string_view component,
                                       std::string_view msg) {
      lines_.push_back({level, std::string{component}, std::string{msg}});
    });
    previous_level_ = Logger::instance().level();
  }
  ~LogCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(previous_level_);
  }
  [[nodiscard]] const std::vector<CapturedLine>& lines() const { return lines_; }

 private:
  std::vector<CapturedLine> lines_;
  LogLevel previous_level_;
};

TEST(Logger, LevelFilterDropsBelow) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  THERMCTL_LOG_DEBUG("test", "dropped %d", 1);
  THERMCTL_LOG_INFO("test", "dropped %d", 2);
  THERMCTL_LOG_WARN("test", "kept %d", 3);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].msg, "kept 3");
  EXPECT_EQ(capture.lines()[0].component, "test");
}

TEST(Logger, FormatsPrintfStyle) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kDebug);
  THERMCTL_LOG_INFO("fanctl", "duty %.0f%% -> %.0f%%", 10.0, 35.0);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].msg, "duty 10% -> 35%");
  EXPECT_EQ(capture.lines()[0].level, LogLevel::kInfo);
}

TEST(Logger, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

TEST(Logger, SinkResetRestoresDefault) {
  {
    LogCapture capture;
    Logger::instance().set_level(LogLevel::kDebug);
    THERMCTL_LOG_INFO("x", "captured");
    EXPECT_EQ(capture.lines().size(), 1u);
  }
  // After capture teardown the default (stderr) sink is back; just verify
  // logging does not crash.
  THERMCTL_LOG_DEBUG("x", "to stderr default sink");
  SUCCEED();
}

TEST(Logger, ParseLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
}

TEST(Logger, ParseLevelRejectsGarbage) {
  // THERMCTL_LOG_LEVEL uses this parser; unparsable values must come back
  // nullopt so the logger keeps its current level instead of guessing.
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("4"), std::nullopt);
  EXPECT_EQ(parse_log_level("-1"), std::nullopt);
  EXPECT_EQ(parse_log_level("debugx"), std::nullopt);
}

TEST(Logger, ConcurrentLoggingAndSinkSwapIsSafe) {
  // Parallel sweeps log from every worker while tests may swap sinks; the
  // singleton serializes both on one mutex. Hammer the pair under TSan/ASan.
  Logger::instance().set_level(LogLevel::kDebug);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> captured{0};
  Logger::instance().set_sink(
      [&captured](LogLevel, std::string_view, std::string_view) {
        captured.fetch_add(1, std::memory_order_relaxed);
      });
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        THERMCTL_LOG_INFO("stress", "writer %d", t);
      }
    });
  }
  for (int swap = 0; swap < 200; ++swap) {
    Logger::instance().set_sink(
        [&captured](LogLevel, std::string_view, std::string_view) {
          captured.fetch_add(1, std::memory_order_relaxed);
        });
  }
  // One emission from this thread, so the capture assertion below does not
  // depend on the writers winning a scheduling race before stop.
  THERMCTL_LOG_INFO("stress", "main");
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) {
    w.join();
  }
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_GT(captured.load(), 0u);
}

}  // namespace
}  // namespace thermctl
