#include "common/log.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace thermctl {
namespace {

struct CapturedLine {
  LogLevel level;
  std::string component;
  std::string msg;
};

class LogCapture {
 public:
  LogCapture() {
    Logger::instance().set_sink([this](LogLevel level, std::string_view component,
                                       std::string_view msg) {
      lines_.push_back({level, std::string{component}, std::string{msg}});
    });
    previous_level_ = Logger::instance().level();
  }
  ~LogCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(previous_level_);
  }
  [[nodiscard]] const std::vector<CapturedLine>& lines() const { return lines_; }

 private:
  std::vector<CapturedLine> lines_;
  LogLevel previous_level_;
};

TEST(Logger, LevelFilterDropsBelow) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  THERMCTL_LOG_DEBUG("test", "dropped %d", 1);
  THERMCTL_LOG_INFO("test", "dropped %d", 2);
  THERMCTL_LOG_WARN("test", "kept %d", 3);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].msg, "kept 3");
  EXPECT_EQ(capture.lines()[0].component, "test");
}

TEST(Logger, FormatsPrintfStyle) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kDebug);
  THERMCTL_LOG_INFO("fanctl", "duty %.0f%% -> %.0f%%", 10.0, 35.0);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].msg, "duty 10% -> 35%");
  EXPECT_EQ(capture.lines()[0].level, LogLevel::kInfo);
}

TEST(Logger, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

TEST(Logger, SinkResetRestoresDefault) {
  {
    LogCapture capture;
    Logger::instance().set_level(LogLevel::kDebug);
    THERMCTL_LOG_INFO("x", "captured");
    EXPECT_EQ(capture.lines().size(), 1u);
  }
  // After capture teardown the default (stderr) sink is back; just verify
  // logging does not crash.
  THERMCTL_LOG_DEBUG("x", "to stderr default sink");
  SUCCEED();
}

}  // namespace
}  // namespace thermctl
