#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace thermctl {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb{4};
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, PushUntilFull) {
  RingBuffer<int> rb{3};
  rb.push(1);
  rb.push(2);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> rb{3};
  for (int i = 1; i <= 5; ++i) {
    rb.push(i);
  }
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, AtIndexesFromOldest) {
  RingBuffer<int> rb{4};
  for (int i = 10; i < 16; ++i) {
    rb.push(i);
  }
  // Buffer now holds 12, 13, 14, 15.
  EXPECT_EQ(rb.at(0), 12);
  EXPECT_EQ(rb.at(1), 13);
  EXPECT_EQ(rb.at(3), 15);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb{2};
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(7);
  EXPECT_EQ(rb.front(), 7);
  EXPECT_EQ(rb.back(), 7);
}

TEST(RingBuffer, FifoSemanticsMatchPaperLevel2Window) {
  // §3.2.1: "enqueue and dequeue when a new round of sampling finishes" —
  // a 5-entry FIFO of round averages.
  RingBuffer<double> fifo{5};
  for (int round = 0; round < 8; ++round) {
    fifo.push(40.0 + round);
  }
  EXPECT_DOUBLE_EQ(fifo.front(), 43.0);  // oldest surviving round
  EXPECT_DOUBLE_EQ(fifo.back(), 47.0);   // newest round
  EXPECT_DOUBLE_EQ(fifo.back() - fifo.front(), 4.0);
}

TEST(RingBuffer, SingleElementCapacity) {
  RingBuffer<int> rb{1};
  rb.push(1);
  EXPECT_TRUE(rb.full());
  rb.push(2);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 2);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBufferDeath, ZeroCapacityAborts) {
  EXPECT_DEATH(RingBuffer<int>{0}, "capacity");
}

TEST(RingBufferDeath, FrontOnEmptyAborts) {
  RingBuffer<int> rb{2};
  EXPECT_DEATH((void)rb.front(), "empty");
}

TEST(RingBufferDeath, AtOutOfRangeAborts) {
  RingBuffer<int> rb{2};
  rb.push(1);
  EXPECT_DEATH((void)rb.at(1), "range");
}

}  // namespace
}  // namespace thermctl
