// OS-surface contract test: the complete sysfs tree a node exposes.
//
// Controllers, operator tooling and the thermctld example all navigate this
// tree by path; this test pins the full attribute inventory so an accidental
// rename or dropped attribute fails loudly. It is the simulation's
// equivalent of a kernel ABI test.
#include <gtest/gtest.h>

#include "cluster/node.hpp"

namespace thermctl::cluster {
namespace {

TEST(OsSurface, FullAttributeInventory) {
  NodeParams params;
  Node node{0, params};

  const std::vector<std::string> expected{
      // cpufreq (in-band DVFS plane)
      "/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq",
      "/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_min_freq",
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies",
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq",
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed",
      "/sys/devices/system/cpu/cpu0/cpufreq/stats/total_trans",
      // hwmon (lm-sensors plane: temperature, fan, PWM)
      "/sys/class/hwmon/hwmon0/fan1_input",
      "/sys/class/hwmon/hwmon0/name",
      "/sys/class/hwmon/hwmon0/pwm1",
      "/sys/class/hwmon/hwmon0/pwm1_enable",
      "/sys/class/hwmon/hwmon0/temp1_input",
      // powercap (RAPL counters)
      "/sys/class/powercap/intel-rapl:0/aperf",
      "/sys/class/powercap/intel-rapl:0/energy_uj",
      "/sys/class/powercap/intel-rapl:0/max_energy_range_uj",
      "/sys/class/powercap/intel-rapl:0/mperf",
      "/sys/class/powercap/intel-rapl:0/name",
      // thermal cooling device (idle injection)
      "/sys/class/thermal/cooling_device0/cur_state",
      "/sys/class/thermal/cooling_device0/max_state",
      "/sys/class/thermal/cooling_device0/type",
      // proc (utilization counters)
      "/proc/stat",
  };

  for (const std::string& path : expected) {
    EXPECT_TRUE(node.vfs().exists(path)) << "missing attribute: " << path;
  }

  // And the inventory is exactly this — no stray attributes accumulate.
  const auto sys = node.vfs().list("/sys");
  const auto proc = node.vfs().list("/proc");
  EXPECT_EQ(sys.size() + proc.size(), expected.size());
}

TEST(OsSurface, EveryAttributeReadableOrWritable) {
  NodeParams params;
  Node node{0, params};
  node.sample_sensor();
  for (const std::string& path : node.vfs().list("/sys")) {
    const bool readable = node.vfs().read(path).has_value();
    // Write probes would mutate state; presence of a read handler is the
    // contract for everything we expose (write-only attributes don't exist
    // in this tree).
    EXPECT_TRUE(readable) << path << " is not readable";
  }
}

TEST(OsSurface, KernelUnitsConventionsHold) {
  NodeParams params;
  params.sensor.noise_sigma_degc = 0.0;
  Node node{0, params};
  node.sample_sensor();
  // temp1_input: millidegrees; scaling_cur_freq: kHz; pwm1: 0-255.
  const long milli = node.vfs().read_long("/sys/class/hwmon/hwmon0/temp1_input").value();
  EXPECT_GT(milli, 20000);
  EXPECT_LT(milli, 100000);
  const long khz =
      node.vfs().read_long("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq").value();
  EXPECT_EQ(khz, 2400000);
  const long pwm = node.vfs().read_long("/sys/class/hwmon/hwmon0/pwm1").value();
  EXPECT_GE(pwm, 0);
  EXPECT_LE(pwm, 255);
}

}  // namespace
}  // namespace thermctl::cluster
