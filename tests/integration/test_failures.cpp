// Failure-injection integration tests: the emergency scenarios that motivate
// coordinated thermal control (fan failure → DVFS rescue; sensor and bus
// faults must degrade gracefully, not crash the control plane).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/fan_policy.hpp"
#include "core/tdvfs.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::core {
namespace {

cluster::NodeParams quiet() {
  cluster::NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

struct FailureRig {
  cluster::Cluster cluster{1, quiet()};
  cluster::EngineConfig cfg;
  workload::SegmentLoad burn = workload::gradual_profile(Seconds{600.0});

  explicit FailureRig(double horizon) {
    cfg.horizon = Seconds{horizon};
    cluster.node(0).set_utilization(Utilization{0.02});
    cluster.node(0).settle();
  }
};

TEST(Failures, FanStuckCausesProchotWithoutDvfs) {
  FailureRig rig{240.0};
  cluster::Engine engine{rig.cluster, rig.cfg};
  engine.set_node_load(0, &rig.burn);
  // Fan rotor seizes 10 s in; no in-band protection beyond PROCHOT.
  engine.add_periodic(Seconds{10.0}, [&rig](SimTime now) {
    if (now.seconds() <= 10.1) {
      rig.cluster.node(0).fan().inject_stuck_fault();
    }
  });
  const cluster::RunResult result = engine.run();
  EXPECT_GE(rig.cluster.node(0).prochot_events(), 1);
  EXPECT_GT(result.max_die_temp(), 70.0);
}

TEST(Failures, TdvfsRescuesFanFailure) {
  FailureRig rig{240.0};
  cluster::Engine engine{rig.cluster, rig.cfg};
  engine.set_node_load(0, &rig.burn);

  TdvfsConfig tc;
  tc.pp = PolicyParam{25};
  tc.threshold = Celsius{55.0};
  TdvfsDaemon daemon{rig.cluster.node(0).hwmon(), rig.cluster.node(0).cpufreq(), tc};
  engine.add_periodic(Seconds{0.25}, [&daemon](SimTime now) { daemon.on_sample(now); });
  engine.add_periodic(Seconds{10.0}, [&rig](SimTime now) {
    if (now.seconds() <= 10.1) {
      rig.cluster.node(0).fan().inject_stuck_fault();
    }
  });
  const cluster::RunResult result = engine.run();
  // The in-band path stepped in and held the die below PROCHOT.
  EXPECT_FALSE(daemon.events().empty());
  EXPECT_LT(rig.cluster.node(0).cpu().frequency().value(), 2.4);
  EXPECT_LT(result.max_die_temp(), 78.0);
  EXPECT_EQ(rig.cluster.node(0).prochot_events(), 0);
}

TEST(Failures, StuckSensorBlindsControllerButNothingCrashes) {
  FailureRig rig{120.0};
  cluster::Engine engine{rig.cluster, rig.cfg};
  engine.set_node_load(0, &rig.burn);

  FanControlConfig fc;
  fc.pp = PolicyParam{50};
  DynamicFanController fan{rig.cluster.node(0).hwmon(), fc};
  engine.add_periodic(Seconds{0.25}, [&fan](SimTime now) { fan.on_sample(now); });
  // Sensor freezes at its idle reading 5 s in.
  engine.add_periodic(Seconds{5.0}, [&rig](SimTime now) {
    if (now.seconds() <= 5.1) {
      rig.cluster.node(0).sensor().inject_stuck_fault();
    }
  });
  const cluster::RunResult result = engine.run();
  // The frozen reading shows no variation, so all retargets happened during
  // the first 5 live seconds; afterwards the controller is blind and the
  // die drifts upward unchecked.
  EXPECT_LE(fan.retarget_count(), 10u);
  EXPECT_GT(result.max_die_temp(), 55.0);
  // The blind controller's duty is frozen: the last two recorded duty
  // samples are identical.
  const auto& duty = result.nodes[0].duty;
  ASSERT_GE(duty.size(), 2u);
  EXPECT_DOUBLE_EQ(duty.back(), duty[duty.size() - 2]);
}

TEST(Failures, I2cBusFaultDoesNotCrashControlLoop) {
  FailureRig rig{60.0};
  cluster::Engine engine{rig.cluster, rig.cfg};
  engine.set_node_load(0, &rig.burn);

  FanControlConfig fc;
  fc.pp = PolicyParam{25};
  DynamicFanController fan{rig.cluster.node(0).hwmon(), fc};
  engine.add_periodic(Seconds{0.25}, [&fan](SimTime now) { fan.on_sample(now); });
  engine.add_periodic(Seconds{5.0}, [&rig](SimTime now) {
    if (now.seconds() <= 5.1) {
      rig.cluster.node(0).i2c().inject_bus_fault();
    }
  });
  const cluster::RunResult result = engine.run();
  (void)result;  // completing the run without aborting is the assertion
  SUCCEED();
}

TEST(Failures, ThermtripHaltsNodeAndWorkStops) {
  cluster::NodeParams p = quiet();
  p.protection.prochot_enabled = false;
  p.protection.critical = Celsius{60.0};
  cluster::Cluster cluster{1, p};
  cluster.node(0).set_utilization(Utilization{0.02});
  cluster.node(0).settle();
  cluster::EngineConfig cfg;
  cfg.horizon = Seconds{300.0};
  cluster::Engine engine{cluster, cfg};
  const auto burn = workload::gradual_profile(Seconds{600.0});
  engine.set_node_load(0, &burn);
  // Pin the fan to nothing so the node cooks.
  cluster.node(0).bmc().set_fan_override(DutyCycle{1.0});
  const cluster::RunResult result = engine.run();
  EXPECT_TRUE(cluster.node(0).halted());
  // After the halt, power drops to trickle and temperature decays.
  EXPECT_LT(result.nodes[0].util.back(), 0.05);
  EXPECT_LT(result.nodes[0].die_temp.back(), 60.0);
}

TEST(Failures, BmcStaysReachableWhileNodeHalted) {
  // The out-of-band plane must survive an in-band death — its whole point.
  cluster::NodeParams p = quiet();
  p.protection.prochot_enabled = false;
  p.protection.critical = Celsius{55.0};
  cluster::Cluster cluster{1, p};
  cluster.node(0).bmc().set_fan_override(DutyCycle{1.0});
  cluster.node(0).set_utilization(Utilization{1.0});
  for (int i = 0; i < 20000 && !cluster.node(0).halted(); ++i) {
    cluster.node(0).step(Seconds{0.05});
  }
  ASSERT_TRUE(cluster.node(0).halted());
  sysfs::SensorReading reading;
  EXPECT_EQ(cluster.ipmi().get_sensor_reading(0, 1, reading), sysfs::IpmiCompletion::kOk);
  EXPECT_EQ(cluster.ipmi().set_fan_override(0, DutyCycle{100.0}),
            sysfs::IpmiCompletion::kOk);
}

}  // namespace
}  // namespace thermctl::core
