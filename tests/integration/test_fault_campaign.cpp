// Randomized fault-campaign integration tests: seeded schedules of stuck
// sensors and i2c bus faults over the full experiment stack, run through the
// parallel sweep runtime. The fault-aware controllers must enter fail-safe
// cooling, keep every node below the emergency temperature, restore normal
// control on recovery, and account every fault event — deterministically.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "runtime/sweep.hpp"

namespace thermctl::core {
namespace {

/// A 2-node campaign over a sustained cpu-burn: hot enough that blind
/// control would matter, short enough for a test.
ExperimentConfig campaign_config() {
  ExperimentConfig cfg = paper_platform();
  cfg.name = "fault-campaign";
  cfg.nodes = 2;
  cfg.workload = WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{60.0};
  cfg.engine.horizon = Seconds{120.0};
  cfg.fan = FanPolicyKind::kDynamic;
  cfg.dvfs = DvfsPolicyKind::kTdvfs;
  cfg.pp = PolicyParam::aggressive();
  cfg.fault_aware = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = 7;
  cfg.faults.episodes_per_node = 3;
  cfg.faults.start_after = Seconds{15.0};
  cfg.faults.min_duration = Seconds{10.0};
  cfg.faults.max_duration = Seconds{20.0};
  return cfg;
}

TEST(FaultCampaign, ScheduleIsSeededAndSorted) {
  const ExperimentConfig cfg = campaign_config();
  const auto a = make_fault_schedule(cfg.faults, 0, cfg.engine.horizon);
  const auto b = make_fault_schedule(cfg.faults, 0, cfg.engine.horizon);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].start.value(), b[i].start.value());
    EXPECT_DOUBLE_EQ(a[i].end.value(), b[i].end.value());
    EXPECT_GE(a[i].start.value(), cfg.faults.start_after.value());
    EXPECT_GT(a[i].end.value(), a[i].start.value());
    if (i > 0) {
      EXPECT_GE(a[i].start.value(), a[i - 1].start.value());
    }
  }
  // Different nodes get decorrelated schedules.
  const auto other = make_fault_schedule(cfg.faults, 1, cfg.engine.horizon);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].start.value() != other[i].start.value();
  }
  EXPECT_TRUE(differs);
}

TEST(FaultCampaign, DisabledCampaignYieldsNoSchedule) {
  FaultCampaignConfig off;
  EXPECT_TRUE(make_fault_schedule(off, 0, Seconds{100.0}).empty());
}

TEST(FaultCampaign, FailsafeEngagesAndNodesStayBelowEmergency) {
  const ExperimentConfig cfg = campaign_config();
  const ExperimentResult result = run_experiment(cfg);

  // The seeded schedule must exercise both fault kinds somewhere.
  ASSERT_EQ(result.fault_schedules.size(), cfg.nodes);
  int stuck_episodes = 0;
  int bus_episodes = 0;
  for (const auto& schedule : result.fault_schedules) {
    for (const FaultEpisode& e : schedule) {
      (e.kind == FaultEpisode::Kind::kSensorStuck ? stuck_episodes : bus_episodes) += 1;
    }
  }
  ASSERT_GT(stuck_episodes, 0) << "seed no longer schedules a stuck sensor";
  ASSERT_GT(bus_episodes, 0) << "seed no longer schedules a bus fault";

  // Degradation engaged and recovered.
  const ControllerFaultStats& fs = result.fault_stats;
  EXPECT_GE(fs.sensor_failures, 1u);
  EXPECT_GE(fs.sensor_recoveries, 1u);
  EXPECT_GE(fs.failsafe_entries, 1u);
  EXPECT_GE(fs.failsafe_exits, 1u);
  EXPECT_GE(fs.dvfs_hold_entries, 1u);

  // Fail-safe cooling held: no node ever reached the 90 °C emergency
  // (THERMTRIP) temperature, with margin.
  EXPECT_LT(result.run.max_die_temp(), 85.0);

  // Bus faults flowed into the metrics: the driver retried and, for
  // persistent episodes, exhausted its budget.
  EXPECT_GT(result.run.total_i2c_bus_faults(), 0u);
  EXPECT_GT(result.run.total_i2c_retries(), 0u);
  EXPECT_GT(result.run.total_i2c_exhausted(), 0u);

  // The same counters surface in the human-readable report.
  ReportOptions opts;
  const std::string report = render_report(result, opts);
  EXPECT_NE(report.find("i2c faults"), std::string::npos);
  EXPECT_NE(report.find("sensor health"), std::string::npos);
  EXPECT_NE(report.find("fail-safe"), std::string::npos);
}

TEST(FaultCampaign, ParallelSweepReproducesCampaignBitExactly) {
  const ExperimentConfig cfg = campaign_config();
  const std::vector<ExperimentConfig> points{cfg, cfg};

  runtime::SweepOptions parallel;
  parallel.threads = 2;
  const auto par = runtime::run_sweep(points, parallel);
  runtime::SweepOptions serial;
  serial.threads = 1;
  const auto ser = runtime::run_sweep({cfg}, serial);

  ASSERT_EQ(par.size(), 2u);
  for (const ExperimentResult* r : {&par[0], &par[1]}) {
    ASSERT_EQ(r->run.nodes.size(), ser[0].run.nodes.size());
    for (std::size_t n = 0; n < r->run.nodes.size(); ++n) {
      ASSERT_EQ(r->run.nodes[n].die_temp, ser[0].run.nodes[n].die_temp) << "node " << n;
      ASSERT_EQ(r->run.nodes[n].duty, ser[0].run.nodes[n].duty) << "node " << n;
      ASSERT_EQ(r->run.nodes[n].freq_ghz, ser[0].run.nodes[n].freq_ghz) << "node " << n;
    }
    EXPECT_EQ(r->fault_stats.failsafe_entries, ser[0].fault_stats.failsafe_entries);
    EXPECT_EQ(r->fault_stats.sensor_failures, ser[0].fault_stats.sensor_failures);
    EXPECT_EQ(r->run.total_i2c_bus_faults(), ser[0].run.total_i2c_bus_faults());
  }
}

TEST(FaultCampaign, ZeroFaultRunsBitIdenticalWithGatingOnOrOff) {
  // The acceptance bar for the whole feature: with no faults injected, the
  // fault-aware stack must be indistinguishable from the blind one.
  ExperimentConfig blind = campaign_config();
  blind.faults.enabled = false;
  blind.fault_aware = false;
  ExperimentConfig gated = blind;
  gated.fault_aware = true;

  const ExperimentResult a = run_experiment(blind);
  const ExperimentResult b = run_experiment(gated);

  ASSERT_EQ(a.run.nodes.size(), b.run.nodes.size());
  for (std::size_t n = 0; n < a.run.nodes.size(); ++n) {
    EXPECT_EQ(a.run.nodes[n].sensor_temp, b.run.nodes[n].sensor_temp);
    EXPECT_EQ(a.run.nodes[n].die_temp, b.run.nodes[n].die_temp);
    EXPECT_EQ(a.run.nodes[n].duty, b.run.nodes[n].duty);
    EXPECT_EQ(a.run.nodes[n].freq_ghz, b.run.nodes[n].freq_ghz);
  }
  // No fault machinery fired, and the clean-run report is unchanged too.
  EXPECT_EQ(b.fault_stats.failsafe_entries, 0u);
  EXPECT_EQ(b.fault_stats.sensor_failures, 0u);
  EXPECT_EQ(a.run.total_i2c_retries(), 0u);
  EXPECT_EQ(b.run.total_i2c_retries(), 0u);
  ReportOptions opts;
  EXPECT_EQ(render_report(a, opts), render_report(b, opts));
}

}  // namespace
}  // namespace thermctl::core
