// Recovery and edge-of-envelope scenarios: behaviour after THERMTRIP
// repair, controllers with degenerate configurations, and horizon edges.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/tdvfs.hpp"
#include "core/unified_controller.hpp"
#include "workload/app.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::core {
namespace {

cluster::NodeParams quiet() {
  cluster::NodeParams p;
  p.sensor.noise_sigma_degc = 0.0;
  return p;
}

TEST(Recovery, HaltedNodeResumesWorkAfterClearAndJobFinishes) {
  cluster::NodeParams p = quiet();
  p.protection.prochot_enabled = false;
  p.protection.critical = Celsius{56.0};
  cluster::Cluster rack{1, p};
  rack.node(0).bmc().set_fan_override(DutyCycle{2.0});  // cook it
  rack.node(0).settle();

  cluster::EngineConfig cfg;
  cfg.horizon = Seconds{600.0};
  cluster::Engine engine{rack, cfg};
  std::vector<workload::Program> progs{
      workload::Program{workload::compute_phase(240.0)}};  // 100 s of work
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0});

  bool repaired = false;
  engine.add_periodic(Seconds{1.0}, [&](SimTime now) {
    // Operator notices the halt, fixes cooling, power-cycles the node.
    if (rack.node(0).halted() && !repaired) {
      repaired = true;
      rack.node(0).bmc().set_fan_override(DutyCycle{100.0});
      (void)now;
    }
    if (repaired && rack.node(0).halted() &&
        rack.node(0).die_temperature().value() < 45.0) {
      rack.node(0).clear_halt();
    }
  });

  const cluster::RunResult result = engine.run();
  EXPECT_TRUE(repaired);                 // the node did halt...
  EXPECT_FALSE(rack.node(0).halted());   // ...and was brought back
  EXPECT_TRUE(result.app_completed);     // ...and the job still finished
}

TEST(Recovery, TdvfsWithMinimalArrayStillWorks) {
  // N = 2 is the smallest legal control array: index 0 = 2.4, index 1 = 1.0.
  cluster::Cluster rack{1, quiet()};
  rack.node(0).settle();
  TdvfsConfig cfg;
  cfg.pp = PolicyParam{50};
  cfg.array_size = 2;
  TdvfsDaemon daemon{rack.node(0).hwmon(), rack.node(0).cpufreq(), cfg};
  // Scripted heat through the real sensor: overheat the package model.
  rack.node(0).package().set_cpu_power(Watts{80.0});
  rack.node(0).package().set_airflow(Cfm{1.0});
  SimTime now;
  // The heatsink mass sets the heating pace (~0.4 degC/s): give the die
  // ~90 s to cross the 51 degC threshold and the daemon time to act.
  for (int i = 0; i < 360 && rack.node(0).cpu().frequency().value() > 1.0; ++i) {
    rack.node(0).package().step(Seconds{0.25});
    rack.node(0).sample_sensor();
    now.advance_us(250000);
    daemon.on_sample(now);
  }
  EXPECT_DOUBLE_EQ(rack.node(0).cpu().frequency().value(), 1.0);  // straight to min
}

TEST(Recovery, UnifiedControllerSurvivesSensorDropoutMidRun) {
  cluster::Cluster rack{1, quiet()};
  rack.node(0).settle();
  cluster::EngineConfig cfg;
  cfg.horizon = Seconds{120.0};
  cluster::Engine engine{rack, cfg};
  // Full load while the sensor is stuck, dropping to light load after it
  // recovers — the post-recovery change the controller must react to.
  const workload::SegmentLoad burn{{
      workload::LoadSegment{Seconds{80.0}, 1.0, 1.0, 0.0, Seconds{0.0}, 0.0},
      workload::LoadSegment{Seconds{120.0}, 0.1, 0.1, 0.0, Seconds{0.0}, 0.0},
  }};
  engine.set_node_load(0, &burn);

  UnifiedConfig ucfg;
  ucfg.pp = PolicyParam{50};
  UnifiedController ctl{rack.node(0).hwmon(), rack.node(0).cpufreq(), ucfg};
  engine.add_periodic(Seconds{0.25}, [&ctl](SimTime now) { ctl.on_sample(now); });
  engine.add_periodic(Seconds{30.0}, [&rack](SimTime now) {
    if (now.seconds() < 31.0) {
      rack.node(0).sensor().inject_stuck_fault();
    } else if (now.seconds() < 61.0) {
      rack.node(0).sensor().clear_fault();  // sensor comes back
    }
  });
  engine.run();
  // After the sensor recovers, the controller resumes retargeting: its last
  // event must postdate the recovery.
  ASSERT_FALSE(ctl.fan().events().empty());
  EXPECT_GT(ctl.fan().events().back().time_s, 60.0);
}

TEST(Recovery, HorizonMidBarrierLeavesConsistentState) {
  // Cut the run off while one rank is blocked at a barrier; accounting must
  // still be consistent (no crash, partial progress reported).
  cluster::Cluster rack{2, quiet()};
  cluster::EngineConfig cfg;
  cfg.horizon = Seconds{3.0};
  cluster::Engine engine{rack, cfg};
  std::vector<workload::Program> progs{
      workload::Program{workload::compute_phase(2.4), workload::barrier_phase()},   // 1 s
      workload::Program{workload::compute_phase(48.0), workload::barrier_phase()},  // 20 s
  };
  workload::ParallelApp app{"t", std::move(progs)};
  engine.attach_app(app, {0, 1});
  const cluster::RunResult result = engine.run();
  EXPECT_FALSE(result.app_completed);
  EXPECT_LT(app.progress(), 1.0);
  EXPECT_GT(app.barrier_wait_time(0).value(), 1.5);  // rank 0 waited ~2 s
}

}  // namespace
}  // namespace thermctl::core
