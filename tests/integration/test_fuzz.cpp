// Randomized closed-loop robustness: many seeds, random workloads, random
// policies — the invariants that must hold for *every* run, not just the
// paper's scenarios.
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/unified_controller.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::core {
namespace {

workload::SegmentLoad random_load(Rng& rng) {
  std::vector<workload::LoadSegment> segments;
  const int n = 3 + static_cast<int>(rng.below(5));
  for (int i = 0; i < n; ++i) {
    workload::LoadSegment s;
    s.duration = Seconds{5.0 + rng.uniform() * 40.0};
    s.util_begin = rng.uniform();
    s.util_end = rng.uniform();
    if (rng.uniform() < 0.3) {
      s.jitter_amplitude = rng.uniform() * 0.4;
      s.jitter_period = Seconds{0.5 + rng.uniform() * 4.0};
    }
    s.noise_sigma = rng.uniform() * 0.05;
    segments.push_back(s);
  }
  return workload::SegmentLoad{std::move(segments), rng.next_u64()};
}

class ClosedLoopFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosedLoopFuzz, InvariantsHoldUnderRandomConditions) {
  Rng rng{GetParam()};

  cluster::NodeParams params;
  params.seed = rng.next_u64();
  cluster::Cluster rack{2, params};
  for (std::size_t i = 0; i < 2; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  // Random (but sane) inlet perturbation on one node.
  rack.set_inlet_temperature(1, Celsius{29.5 + rng.uniform() * 8.0});
  rack.settle_all();

  const int pp = 1 + static_cast<int>(rng.below(100));
  const double max_duty = 20.0 + rng.uniform() * 80.0;

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{120.0};
  cluster::Engine engine{rack, engine_cfg};

  std::vector<workload::SegmentLoad> loads;
  loads.push_back(random_load(rng));
  loads.push_back(random_load(rng));
  engine.set_node_load(0, &loads[0]);
  engine.set_node_load(1, &loads[1]);

  std::vector<std::unique_ptr<UnifiedController>> controllers;
  for (std::size_t i = 0; i < 2; ++i) {
    UnifiedConfig cfg;
    cfg.pp = PolicyParam{pp};
    cfg.fan.max_duty = DutyCycle{max_duty};
    cfg.enable_idle_injection = true;
    controllers.push_back(std::make_unique<UnifiedController>(
        rack.node(i).hwmon(), rack.node(i).cpufreq(), rack.node(i).powerclamp(), cfg));
    UnifiedController* raw = controllers.back().get();
    engine.add_periodic(params.sample_period, [raw](SimTime now) { raw->on_sample(now); });
  }

  const cluster::RunResult result = engine.run();

  // Invariant 1: the fan never exceeds its configured ceiling or drops
  // below the physical floor (modulo integer duty modes + the 8-bit PWM
  // register, worst case just under 1%).
  for (const auto& node : result.nodes) {
    for (double duty : node.duty) {
      EXPECT_LE(duty, max_duty + 1.0) << "seed " << GetParam();
      EXPECT_GE(duty, 0.0);
    }
  }

  // Invariant 2: the OS-selected frequency is always a ladder member.
  for (const auto& node : result.nodes) {
    for (double f : node.freq_ghz) {
      const bool legal = f == 2.4 || f == 2.2 || f == 2.0 || f == 1.8 || f == 1.0;
      EXPECT_TRUE(legal) << "frequency " << f << " seed " << GetParam();
    }
  }

  // Invariant 3: nothing melted or halted — the protection ladder plus the
  // controllers keep the die below THERMTRIP under any ≤100% load.
  EXPECT_LT(result.max_die_temp(), 90.0) << "seed " << GetParam();
  EXPECT_FALSE(rack.node(0).halted());
  EXPECT_FALSE(rack.node(1).halted());

  // Invariant 4: controller indexes stayed inside their arrays (would have
  // aborted otherwise) and Pp flowed everywhere.
  for (const auto& ctl : controllers) {
    EXPECT_EQ(ctl->fan().array().policy().value, pp);
    EXPECT_LT(ctl->fan().current_index(), ctl->fan().array().size());
    EXPECT_LT(ctl->dvfs().current_index(), ctl->dvfs().array().size());
  }

  // Invariant 5: series are well-formed (aligned, finite).
  for (const auto& node : result.nodes) {
    ASSERT_EQ(node.die_temp.size(), result.times.size());
    for (double t : node.die_temp) {
      EXPECT_TRUE(std::isfinite(t));
      EXPECT_GT(t, 0.0);
      EXPECT_LT(t, 150.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedLoopFuzz,
                         ::testing::Values(1u, 7u, 42u, 99u, 123u, 500u, 1234u, 5555u, 90210u,
                                           777777u, 31337u, 271828u));

TEST(ClosedLoopFuzzDeterminism, SameSeedSameTrajectory) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng{seed};
    cluster::NodeParams params;
    params.seed = rng.next_u64();
    cluster::Cluster rack{1, params};
    rack.node(0).set_utilization(Utilization{0.02});
    rack.settle_all();
    cluster::EngineConfig cfg;
    cfg.horizon = Seconds{60.0};
    cluster::Engine engine{rack, cfg};
    auto load = random_load(rng);
    engine.set_node_load(0, &load);
    UnifiedConfig ucfg;
    ucfg.pp = PolicyParam{1 + static_cast<int>(rng.below(100))};
    UnifiedController ctl{rack.node(0).hwmon(), rack.node(0).cpufreq(), ucfg};
    engine.add_periodic(Seconds{0.25}, [&ctl](SimTime now) { ctl.on_sample(now); });
    return engine.run();
  };
  const cluster::RunResult a = run_once(424242);
  const cluster::RunResult b = run_once(424242);
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.nodes[0].die_temp[i], b.nodes[0].die_temp[i]);
    ASSERT_DOUBLE_EQ(a.nodes[0].duty[i], b.nodes[0].duty[i]);
    ASSERT_DOUBLE_EQ(a.nodes[0].freq_ghz[i], b.nodes[0].freq_ghz[i]);
  }
}

}  // namespace
}  // namespace thermctl::core
