// Closed-loop integration tests: miniature versions of the paper's
// experiments run through the full stack (workload → CPU → RC thermal →
// sensor → controller → i2c → fan), asserting the *shape* results the
// evaluation section reports.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace thermctl::core {
namespace {

ExperimentConfig base_burn(int pp, double max_duty, double seconds = 120.0) {
  ExperimentConfig cfg = paper_platform();
  cfg.nodes = 1;
  cfg.workload = WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{seconds};
  cfg.fan = FanPolicyKind::kDynamic;
  cfg.pp = PolicyParam{pp};
  cfg.max_duty = DutyCycle{max_duty};
  return cfg;
}

TEST(ClosedLoop, CpuBurnCompletesOnSchedule) {
  const ExperimentResult r = run_experiment(base_burn(50, 100.0, 60.0));
  EXPECT_TRUE(r.run.app_completed);
  // cpu-burn is pure compute at 2.4 GHz with no DVFS: exactly 60 s.
  EXPECT_NEAR(r.run.exec_time_s, 60.0, 0.5);
}

TEST(ClosedLoop, DynamicFanRespondsToBurn) {
  const ExperimentResult r = run_experiment(base_burn(50, 100.0));
  // The fan must have spun up from its initial bottom mode...
  EXPECT_GT(r.run.summaries[0].avg_duty, 5.0);
  EXPECT_FALSE(r.fan_events[0].empty());
  // ...and temperature must stay inside the safe band.
  EXPECT_LT(r.run.max_die_temp(), 70.0);
  EXPECT_EQ(r.run.summaries[0].prochot_events, 0);
}

TEST(ClosedLoop, SmallerPpCoolerButMoreFanDuty) {
  // Fig. 5's ordering, end to end.
  const ExperimentResult aggressive = run_experiment(base_burn(25, 100.0));
  const ExperimentResult weak = run_experiment(base_burn(75, 100.0));
  EXPECT_GT(aggressive.run.summaries[0].avg_duty, weak.run.summaries[0].avg_duty + 5.0);
  EXPECT_LT(aggressive.run.avg_die_temp(), weak.run.avg_die_temp());
}

TEST(ClosedLoop, DynamicBeatsStaticOnAverageTemperature) {
  // Fig. 6: the proactive controller stabilizes lower than the reactive
  // static curve under the same 75% ceiling.
  ExperimentConfig dynamic_cfg = base_burn(50, 75.0);
  ExperimentConfig static_cfg = dynamic_cfg;
  static_cfg.fan = FanPolicyKind::kStaticCurve;
  const ExperimentResult dyn = run_experiment(dynamic_cfg);
  const ExperimentResult sta = run_experiment(static_cfg);
  EXPECT_LT(dyn.run.avg_die_temp(), sta.run.avg_die_temp() + 0.5);
}

TEST(ClosedLoop, ConstantFanCoolestButMostFanPower) {
  // Fig. 6's third series: constant 75% duty.
  ExperimentConfig constant_cfg = base_burn(50, 75.0);
  constant_cfg.fan = FanPolicyKind::kConstantDuty;
  constant_cfg.constant_duty = DutyCycle{75.0};
  const ExperimentResult con = run_experiment(constant_cfg);
  const ExperimentResult dyn = run_experiment(base_burn(50, 75.0));
  EXPECT_LE(con.run.avg_die_temp(), dyn.run.avg_die_temp() + 0.25);
  EXPECT_GT(con.run.summaries[0].avg_duty, dyn.run.summaries[0].avg_duty);
}

TEST(ClosedLoop, TdvfsCapsRunawayUnderWeakFan) {
  // Fig. 9's setup in miniature: max duty 25% is not enough, DVFS must act.
  ExperimentConfig cfg = base_burn(50, 25.0, 180.0);
  cfg.dvfs = DvfsPolicyKind::kTdvfs;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.first_dvfs_trigger_s, 0.0);
  // Temperature is held near the 51 °C threshold instead of running away.
  EXPECT_LT(r.run.max_die_temp(), 51.0 + 6.0);
  // Few, deliberate transitions (Table 1's tDVFS column).
  EXPECT_LE(r.run.summaries[0].freq_transitions, 8u);
}

TEST(ClosedLoop, NoDvfsRunsHotterThanTdvfs) {
  ExperimentConfig with = base_burn(50, 25.0, 150.0);
  with.dvfs = DvfsPolicyKind::kTdvfs;
  ExperimentConfig without = base_burn(50, 25.0, 150.0);
  const ExperimentResult r_with = run_experiment(with);
  const ExperimentResult r_without = run_experiment(without);
  EXPECT_LT(r_with.run.max_die_temp(), r_without.run.max_die_temp());
  // The in-band intervention costs wall time.
  EXPECT_GE(r_with.run.exec_time_s, r_without.run.exec_time_s);
}

TEST(ClosedLoop, MiniBtRunsAcrossFourNodes) {
  ExperimentConfig cfg = paper_platform();
  cfg.workload = WorkloadKind::kNpbBt;
  cfg.npb_iterations_override = 20;
  cfg.fan = FanPolicyKind::kDynamic;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.run.app_completed);
  ASSERT_EQ(r.run.nodes.size(), 4u);
  // All nodes saw load and warmed up together.
  for (const auto& s : r.run.summaries) {
    EXPECT_GT(s.avg_die_temp, 33.0);
  }
}

TEST(ClosedLoop, HybridSmallPpDefersDvfsTrigger) {
  // Fig. 10: aggressive fan control delays the in-band intervention.
  auto trigger_time = [](int pp) {
    ExperimentConfig cfg = base_burn(pp, 60.0, 240.0);
    cfg.dvfs = DvfsPolicyKind::kTdvfs;
    return run_experiment(cfg).first_dvfs_trigger_s;
  };
  const double t_weak = trigger_time(75);
  const double t_aggressive = trigger_time(25);
  ASSERT_GT(t_weak, 0.0);  // weak fan control lets it cross the threshold
  if (t_aggressive > 0.0) {
    EXPECT_GT(t_aggressive, t_weak);
  }
  // (t_aggressive < 0 means the fan alone held the line — even stronger.)
}

TEST(ClosedLoop, DeterministicAcrossRuns) {
  const ExperimentConfig cfg = base_burn(50, 100.0, 60.0);
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  ASSERT_EQ(a.run.times.size(), b.run.times.size());
  for (std::size_t i = 0; i < a.run.times.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.run.nodes[0].die_temp[i], b.run.nodes[0].die_temp[i]);
    ASSERT_DOUBLE_EQ(a.run.nodes[0].duty[i], b.run.nodes[0].duty[i]);
  }
  EXPECT_DOUBLE_EQ(a.run.exec_time_s, b.run.exec_time_s);
}

TEST(ClosedLoop, SeedChangesNoiseButNotShape) {
  ExperimentConfig cfg = base_burn(50, 100.0, 60.0);
  const ExperimentResult a = run_experiment(cfg);
  cfg.seed += 1;
  const ExperimentResult b = run_experiment(cfg);
  // Different noise streams...
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.run.times.size(), b.run.times.size()); ++i) {
    if (a.run.nodes[0].sensor_temp[i] != b.run.nodes[0].sensor_temp[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
  // ...same macroscopic outcome.
  EXPECT_NEAR(a.run.avg_die_temp(), b.run.avg_die_temp(), 1.5);
}

}  // namespace
}  // namespace thermctl::core
