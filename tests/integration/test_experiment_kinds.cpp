// Experiment-harness coverage: every WorkloadKind / FanPolicyKind /
// DvfsPolicyKind combination the benches rely on builds and runs.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace thermctl::core {
namespace {

TEST(ExperimentKinds, IdleWorkloadJustIdles) {
  ExperimentConfig cfg = paper_platform();
  cfg.nodes = 1;
  cfg.workload = WorkloadKind::kIdle;
  cfg.fan = FanPolicyKind::kChipDefault;
  cfg.engine.horizon = Seconds{30.0};
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_FALSE(r.run.app_completed);
  EXPECT_LT(r.run.max_die_temp(), 40.0);
  EXPECT_LT(r.run.nodes[0].util.back(), 0.05);
}

TEST(ExperimentKinds, CpuBurnCyclesShowsDips) {
  ExperimentConfig cfg = paper_platform();
  cfg.nodes = 1;
  cfg.workload = WorkloadKind::kCpuBurnCycles;
  cfg.cpu_burn_duration = Seconds{120.0};
  cfg.fan = FanPolicyKind::kConstantDuty;
  const ExperimentResult r = run_experiment(cfg);
  // Three instances with idle gaps: utilization must dip below 10% at least
  // twice after the first instance started.
  int dips = 0;
  bool was_high = false;
  for (double u : r.run.nodes[0].util) {
    if (u > 0.9) {
      was_high = true;
    } else if (was_high && u < 0.1) {
      ++dips;
      was_high = false;
    }
  }
  EXPECT_GE(dips, 2);
}

TEST(ExperimentKinds, Fig2ProfileRunsToItsHorizon) {
  ExperimentConfig cfg = paper_platform();
  cfg.nodes = 1;
  cfg.workload = WorkloadKind::kFig2Profile;
  cfg.fan = FanPolicyKind::kConstantDuty;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_NEAR(r.run.times.back(), 245.0, 1.0);
  // The profile's full-load plateau must be visible.
  double max_util = 0.0;
  for (double u : r.run.nodes[0].util) {
    max_util = std::max(max_util, u);
  }
  EXPECT_GT(max_util, 0.9);
}

TEST(ExperimentKinds, ChipDefaultFanHonoursCap) {
  ExperimentConfig cfg = paper_platform();
  cfg.nodes = 1;
  cfg.workload = WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{90.0};
  cfg.fan = FanPolicyKind::kChipDefault;
  cfg.max_duty = DutyCycle{30.0};
  const ExperimentResult r = run_experiment(cfg);
  for (double duty : r.run.nodes[0].duty) {
    EXPECT_LE(duty, 31.0);
  }
}

TEST(ExperimentKinds, LuWorkloadCompletes) {
  ExperimentConfig cfg = paper_platform();
  cfg.workload = WorkloadKind::kNpbLu;
  cfg.npb_iterations_override = 15;
  cfg.fan = FanPolicyKind::kDynamic;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.run.app_completed);
  EXPECT_GT(r.run.exec_time_s, 5.0);
}

TEST(ExperimentKinds, PolicyParamHelpers) {
  EXPECT_EQ(PolicyParam::aggressive().value, 25);
  EXPECT_EQ(PolicyParam::moderate().value, 50);
  EXPECT_EQ(PolicyParam::weak().value, 75);
}

TEST(ExperimentKinds, EventLogsSizedToCluster) {
  ExperimentConfig cfg = paper_platform();
  cfg.nodes = 3;
  cfg.workload = WorkloadKind::kIdle;
  cfg.engine.horizon = Seconds{10.0};
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.tdvfs_events.size(), 3u);
  EXPECT_EQ(r.fan_events.size(), 3u);
  EXPECT_DOUBLE_EQ(r.first_dvfs_trigger_s, -1.0);
}

}  // namespace
}  // namespace thermctl::core
